package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
)

// Row is one machine-readable measurement: the benchmark that produced it,
// the instance and machine shape, and the costs. Allocs are process-wide
// deltas around the measurement (averaged per rep), so they include harness
// overhead — comparable across commits as a trajectory, not a precise
// per-job count.
type Row struct {
	Benchmark           string  `json:"benchmark"`
	Instance            string  `json:"instance"`
	Algorithm           string  `json:"algorithm"`
	PEs                 int     `json:"pes"`
	Threads             int     `json:"threads"`
	Vertices            int     `json:"vertices"`
	EdgesDirected       int     `json:"edges_directed"`
	Rounds              int     `json:"rounds"`
	Reps                int     `json:"reps"`
	ModeledSeconds      float64 `json:"modeled_seconds"`
	WallSeconds         float64 `json:"wall_seconds"`
	InputModeledSeconds float64 `json:"input_modeled_seconds,omitempty"`
	EdgesPerSecond      float64 `json:"edges_per_second"`
	AllocsPerRep        uint64  `json:"allocs_per_rep"`
	AllocBytesPerRep    uint64  `json:"alloc_bytes_per_rep"`

	// Service-load fields, set only on internal/serve/loadgen rows: jobs
	// completed, sustained throughput, queue-wait-plus-run latency
	// percentiles, and the fraction of submissions the server rejected.
	Tenant        string  `json:"tenant,omitempty"`
	Jobs          int     `json:"jobs,omitempty"`
	JobsPerSecond float64 `json:"jobs_per_second,omitempty"`
	P50Seconds    float64 `json:"p50_seconds,omitempty"`
	P95Seconds    float64 `json:"p95_seconds,omitempty"`
	P99Seconds    float64 `json:"p99_seconds,omitempty"`
	RejectedRate  float64 `json:"rejected_rate,omitempty"`

	// Robustness fields (loadgen rows): per-outcome result counts (ok,
	// deadline, cancelled, quarantined, fault, error), jobs the server
	// deliberately shed at admission, server-side retries of fault-killed
	// jobs, and machines quarantined during the run — so BENCH_*.json
	// tracks resilience behavior across commits, not just latency.
	Outcomes    map[string]int `json:"outcomes,omitempty"`
	Shed        int            `json:"shed,omitempty"`
	Retried     int64          `json:"retried,omitempty"`
	Quarantined int            `json:"quarantined,omitempty"`
	// RejectP99Seconds is the p99 submit-to-rejection latency: how fast
	// the server says no under overload (should sit orders of magnitude
	// under P50Seconds when shedding is doing its job).
	RejectP99Seconds float64 `json:"reject_p99_seconds,omitempty"`
}

// Recorder accumulates benchmark rows for the -json emitter. Safe for
// concurrent use (experiments are sequential today, but the recorder does
// not depend on that).
type Recorder struct {
	mu    sync.Mutex
	bench string
	rows  []Row
}

// SetBenchmark names the benchmark for subsequently recorded rows.
func (r *Recorder) SetBenchmark(name string) {
	r.mu.Lock()
	r.bench = name
	r.mu.Unlock()
}

// Add appends one row, stamping the current benchmark name (the exported
// entry point for harnesses outside this package, e.g. loadgen).
func (r *Recorder) Add(row Row) { r.add(row) }

// add appends one row, stamping the current benchmark name.
func (r *Recorder) add(row Row) {
	r.mu.Lock()
	row.Benchmark = r.bench
	r.rows = append(r.rows, row)
	r.mu.Unlock()
}

// Rows returns a copy of the recorded rows.
func (r *Recorder) Rows() []Row {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Row(nil), r.rows...)
}

// benchDoc is the BENCH_<date>.json schema, version kamsta-bench/v1.
type benchDoc struct {
	Schema string `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	CPUs   int    `json:"cpus"`
	Scale  struct {
		Ps             []int  `json:"ps"`
		VPerPE         uint64 `json:"v_per_pe"`
		EPerPE         uint64 `json:"e_per_pe"`
		DenseEPerPE    uint64 `json:"dense_e_per_pe"`
		RealWorldScale uint64 `json:"real_world_scale"`
		Seed           uint64 `json:"seed"`
		Reps           int    `json:"reps"`
		BaseCaseCap    int    `json:"base_case_cap"`
	} `json:"scale"`
	Rows []Row `json:"rows"`
}

// WriteJSON emits the recorded rows in the BENCH_<date>.json schema. date
// is an ISO date string chosen by the caller (kept out of the Recorder so
// reruns are reproducible byte-for-byte when the caller pins it).
func (r *Recorder) WriteJSON(w io.Writer, s Scale, date string) error {
	doc := benchDoc{
		Schema: "kamsta-bench/v1",
		Date:   date,
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Rows:   r.Rows(),
	}
	doc.Scale.Ps = s.Ps
	doc.Scale.VPerPE = s.VPerPE
	doc.Scale.EPerPE = s.EPerPE
	doc.Scale.DenseEPerPE = s.DenseEPerPE
	doc.Scale.RealWorldScale = s.RealWorldScale
	doc.Scale.Seed = s.Seed
	doc.Scale.Reps = s.Reps
	doc.Scale.BaseCaseCap = s.BaseCaseCap
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
