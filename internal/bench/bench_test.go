package bench

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/gen"
	"kamsta/internal/graphio"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale {
	return Scale{
		Ps:             []int{2, 4},
		VPerPE:         1 << 6,
		EPerPE:         1 << 9,
		DenseEPerPE:    1 << 10,
		RealWorldScale: 1 << 17,
		Seed:           1,
		Reps:           1,
	}
}

func TestExperimentRunnersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep is slow")
	}
	for name, run := range Experiments() {
		var buf bytes.Buffer
		run(context.Background(), &buf, tinyScale())
		out := buf.String()
		if len(out) < 100 {
			t.Fatalf("%s: suspiciously short output:\n%s", name, out)
		}
		if !strings.Contains(out, "#") {
			t.Fatalf("%s: missing header:\n%s", name, out)
		}
	}
}

func TestRunFileBenchmarksAGraphFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.kg")
	spec := gen.Spec{Family: gen.GNM, N: 200, M: 800, Seed: 2}
	if err := graphio.WriteFile(path, graphio.FormatKamsta, collectEdges(spec, 4)); err != nil {
		t.Fatal(err)
	}
	s := tinyScale()
	s.Ps = []int{2}
	var buf bytes.Buffer
	if err := RunFile(context.Background(), &buf, path, "auto", nil, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"load_s", "boruvka", "sparseMatrix"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunFile output missing %q:\n%s", want, out)
		}
	}
	if err := RunFile(context.Background(), &buf, filepath.Join(t.TempDir(), "missing.kg"), "auto", nil, s); err == nil {
		t.Fatal("RunFile on a missing file should error")
	}
}

func TestFig2ShowsTwoLevelAdvantage(t *testing.T) {
	// The headline of Fig. 2: at the largest p, the two-level exchange must
	// beat the one-level on the contraction phase.
	s := tinyScale()
	s.Ps = []int{32}
	var buf bytes.Buffer
	Fig2(context.Background(), &buf, s)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var one, two float64
	for _, ln := range lines {
		f := strings.Fields(ln)
		if len(f) >= 3 && f[1] == "one-level" {
			one = parseF(t, f[2])
		}
		if len(f) >= 3 && f[1] == "two-level" {
			two = parseF(t, f[2])
		}
	}
	if one == 0 || two == 0 {
		t.Fatalf("could not parse Fig2 output:\n%s", buf.String())
	}
	if two >= one {
		t.Fatalf("two-level (%.3e) should beat one-level (%.3e) at p=32", two, one)
	}
}

func TestWeakSpecScalesWithP(t *testing.T) {
	s := DefaultScale()
	a := weakSpec(gen.GNM, s, 4)
	b := weakSpec(gen.GNM, s, 8)
	if b.N != 2*a.N || b.M != 2*a.M {
		t.Fatalf("weak scaling should double the instance with p: %+v vs %+v", a, b)
	}
}

func TestAlgConfigKnownSeries(t *testing.T) {
	for _, name := range []string{"boruvka", "filterBoruvka", "boruvka-nopre", "filterBoruvka-nopre", "MND-MST", "sparseMatrix"} {
		cfg := algConfig(name, 2, DefaultScale())
		if cfg.Algorithm == "" {
			t.Fatalf("%s: no algorithm set", name)
		}
		if cfg.Threads != 2 {
			t.Fatalf("%s: threads not propagated", name)
		}
	}
}

func TestAlgConfigUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown series should panic")
		}
	}()
	algConfig("nope", 1, DefaultScale())
}

func TestExperimentNamesComplete(t *testing.T) {
	names := ExperimentNames()
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "shared", "table1", "table1file"}
	if len(names) != len(want) {
		t.Fatalf("experiments: %v want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("experiments: %v want %v", names, want)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestShapeHeadlines asserts the qualitative claims of the paper's figures
// in the paper's operating regime. The laptop-sized instances here carry
// ~2^11 times fewer edges per PE than the paper's (2^10 vs 2^21), which
// would leave the modeled time latency-dominated and invert Fig. 3's
// ordering — a regime effect, not an algorithmic one. Scaling the per-edge
// compute and per-byte costs by that factor restores the paper's
// compute/volume-dominated regime, in which the figure's claims must hold:
// our algorithms beat both competitors on local graphs (Fig. 3) and
// preprocessing pays off on dense local graphs (Fig. 4). EXPERIMENTS.md
// reports both regimes.
func TestShapeHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("shape sweep is slow")
	}
	s := tinyScale()
	p := 16
	// Amplify only the per-op compute cost: one modeled edge operation
	// stands for the ~2^7 operations the paper-scale instance would do.
	// Beta stays at default, which undercharges the competitors' data
	// volume if anything — a conservative direction for our claims.
	// Instances must be large enough to be in the paper's locality regime:
	// an RGG only develops per-PE locality once its cell grid is much
	// finer than the PE count, and sparseMatrix's Θ(n)-per-round term only
	// bites once n is large.
	regime := comm.CostModel{Alpha: 10e-6, Beta: 1e-9, Compute: 2.5e-7}
	s.BaseCaseCap = 256
	mp := newMachinePool(context.Background(), s)
	defer mp.Close()

	modeled := func(series string, threads int, f gen.Family, n, m uint64) float64 {
		spec := gen.Spec{Family: f, N: n, M: m, Seed: 1}
		cfg := algConfig(series, threads, s)
		cfg.PEs = p
		cfg.Cost = regime
		return mp.measure(spec, cfg, 1).ModeledSeconds
	}

	// Fig. 3 headline on the grid family: locality exploitation wins big.
	ours := modeled("boruvka", 1, gen.Grid2D, 1<<14, 0)
	sparse := modeled("sparseMatrix", 1, gen.Grid2D, 1<<14, 0)
	if ours*2 > sparse {
		t.Errorf("fig3 shape: boruvka (%.3e) should beat sparseMatrix (%.3e) by >2x on 2D-GRID", ours, sparse)
	}
	// MND-MST is genuinely strong on grids at small p (the paper's Fig. 3
	// starts at 2^9 cores); require rough parity here and a clear win on
	// the locality-free family, where MND's merge hierarchy hauls the
	// whole graph onto leaders.
	// At p=16 MND's hierarchy is only two shallow merge levels and the
	// grid contracts almost entirely locally, so MND can genuinely lead;
	// its leader bottleneck only shows at the paper's core counts (≥2^9).
	mnd := modeled("MND-MST", 1, gen.Grid2D, 1<<14, 0)
	if ours > mnd*3 {
		t.Errorf("fig3 shape: boruvka (%.3e) should be within 3x of MND-MST (%.3e) on 2D-GRID at small p", ours, mnd)
	}
	oursGNM := modeled("boruvka", 1, gen.GNM, 1<<11, 1<<14)
	mndGNM := modeled("MND-MST", 1, gen.GNM, 1<<11, 1<<14)
	if oursGNM >= mndGNM {
		t.Errorf("fig3 shape: boruvka (%.3e) should beat MND-MST (%.3e) on GNM", oursGNM, mndGNM)
	}

	// Fig. 4 headline: preprocessing on vs off on a dense local graph in
	// the locality regime (cell grid ≫ PE count).
	on := modeled("boruvka", 1, gen.RGG2D, 1<<14, 1<<17)
	off := modeled("boruvka-nopre", 1, gen.RGG2D, 1<<14, 1<<17)
	if on >= off {
		t.Errorf("fig4 shape: preprocessing on (%.3e) should beat off (%.3e) on dense 2D-RGG", on, off)
	}
}
