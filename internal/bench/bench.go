// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (§VII) on the simulated machine
// and prints the same rows/series the paper plots. Absolute numbers come
// from the α-β cost model, so the interesting output is the shape — who
// wins, by what factor, where crossovers fall — as recorded side-by-side
// with the paper's values in EXPERIMENTS.md.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"kamsta"
	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/graphio"
)

// Scale holds the simulator-wide workload knobs. The paper uses 2^17
// vertices and 2^21 edges per core on up to 2^16 cores; the defaults here
// are laptop-sized and every knob is a flag in cmd/mstbench.
type Scale struct {
	// Ps is the list of PE counts to sweep.
	Ps []int
	// VPerPE and EPerPE are weak-scaling per-PE vertex/undirected-edge
	// budgets (the paper: 2^17 and 2^21).
	VPerPE, EPerPE uint64
	// DenseEPerPE is the denser setting of Fig. 4 (the paper: 2^23).
	DenseEPerPE uint64
	// RealWorldScale divides Table I instance sizes for strong scaling.
	RealWorldScale uint64
	// Seed for all instances.
	Seed uint64
	// Reps repeats each measurement, keeping the minimum modeled time
	// (the paper reports means of ≥3 runs with warm-up; with a
	// deterministic cost model the minimum of a few runs is equivalent).
	Reps int
	// BaseCaseCap is the base-case vertex threshold. The paper uses 35000
	// with 2^17 vertices per core (~1/4 of a PE's vertices); 0 derives the
	// same ratio from VPerPE.
	BaseCaseCap int
	// Timeout, when positive, bounds every job of the sweep: each Compute
	// runs under context.WithTimeout and a job that exceeds it fails the
	// sweep with context.DeadlineExceeded (cmd/mstbench -timeout).
	Timeout time.Duration

	// Transport and Workers select the machine substrate for every pooled
	// machine (kamsta.MachineConfig.Transport/Workers): "" or "shm" runs
	// in-process, "tcp" leads a distributed world over the given mstworker
	// addresses. Modeled results are transport-invariant; wall time is not.
	Transport string
	Workers   []string

	// Metrics, when non-nil, registers every pooled machine's job-level and
	// per-PE substrate series in this registry (cmd/mstbench -metrics).
	Metrics *kamsta.Metrics
	// Trace, when non-nil, records the span stream of every measured job
	// (cmd/mstbench -trace).
	Trace *kamsta.Trace
	// Rec, when non-nil, records machine-readable benchmark rows for the
	// -json emitter and the BENCH_<date>.json trajectory.
	Rec *Recorder
}

// baseCap resolves the base-case threshold for this scale.
func (s Scale) baseCap() int {
	if s.BaseCaseCap > 0 {
		return s.BaseCaseCap
	}
	return int(s.VPerPE/4) + 2
}

// DefaultScale returns the laptop-sized default workload.
func DefaultScale() Scale {
	return Scale{
		Ps:             []int{4, 8, 16, 32, 64},
		VPerPE:         1 << 9,
		EPerPE:         1 << 13,
		DenseEPerPE:    1 << 14,
		RealWorldScale: 1 << 14,
		Seed:           1,
		Reps:           1,
	}
}

// algConfigs maps the paper's series names to configurations.
func algConfig(name string, threads int, s Scale) kamsta.Config {
	cfg := kamsta.Config{Threads: threads}
	cfg.Core.BaseCaseCap = s.baseCap()
	switch name {
	case "boruvka":
		cfg.Algorithm = kamsta.AlgBoruvka
		cfg.Core.LocalPreprocessing = true
		cfg.Core.LocalFilter = true
		cfg.Core.HashDedup = true
		cfg.Core.DedupParallel = true
	case "filterBoruvka":
		cfg.Algorithm = kamsta.AlgFilterBoruvka
		cfg.Core.LocalPreprocessing = true
		cfg.Core.LocalFilter = true
		cfg.Core.HashDedup = true
		cfg.Core.DedupParallel = true
	case "boruvka-nopre":
		cfg.Algorithm = kamsta.AlgBoruvka
		cfg.Core.DedupParallel = true
	case "filterBoruvka-nopre":
		cfg.Algorithm = kamsta.AlgFilterBoruvka
		cfg.Core.DedupParallel = true
	case "MND-MST":
		cfg.Algorithm = kamsta.AlgMNDMST
	case "sparseMatrix":
		cfg.Algorithm = kamsta.AlgSparseMatrix
	default:
		panic("bench: unknown algorithm series " + name)
	}
	return cfg
}

// seriesConfig is algConfig keyed by public algorithm name instead of the
// figures' series names (used by the file-backed runner, where the caller
// picks algorithms with -alg). The paper's algorithms get their default
// enhancements; baselines run as published.
func seriesConfig(alg kamsta.Algorithm, threads int, s Scale) kamsta.Config {
	switch alg {
	case kamsta.AlgBoruvka:
		return algConfig("boruvka", threads, s)
	case kamsta.AlgFilterBoruvka:
		return algConfig("filterBoruvka", threads, s)
	case kamsta.AlgMNDMST:
		return algConfig("MND-MST", threads, s)
	case kamsta.AlgSparseMatrix:
		return algConfig("sparseMatrix", threads, s)
	}
	cfg := kamsta.Config{Threads: threads, Algorithm: alg}
	cfg.Core.BaseCaseCap = s.baseCap()
	return cfg
}

// machinePool caches persistent kamsta.Machines keyed by machine shape
// (PEs, threads, cost model), so a sweep reuses one parked world per shape
// across all its data points instead of rebuilding the world — spawning p
// goroutines and allocating all boards — for every measurement. Every
// experiment owns a pool for its duration and closes it on exit. The pool
// carries the sweep's context: cancelling it (SIGINT in cmd/mstbench)
// aborts the in-flight job at its next collective and stops the sweep.
type machinePool struct {
	ctx context.Context
	ms  map[machineKey]*kamsta.Machine

	// timeout, when positive, wraps every Compute in context.WithTimeout
	// (Scale.Timeout; the -timeout flag).
	timeout time.Duration

	// transport and workers configure every pooled machine's substrate
	// backend (Scale.Transport/Workers).
	transport string
	workers   []string

	// Observability sinks shared by every measurement of the sweep (all
	// may be nil; see the Scale fields of the same names).
	metrics *kamsta.Metrics
	trace   *kamsta.Trace
	rec     *Recorder
}

type machineKey struct {
	pes, threads int
	cost         comm.CostModel
}

func newMachinePool(ctx context.Context, s Scale) *machinePool {
	if ctx == nil {
		ctx = context.Background()
	}
	return &machinePool{
		ctx:       ctx,
		ms:        make(map[machineKey]*kamsta.Machine),
		timeout:   s.Timeout,
		transport: s.Transport,
		workers:   s.Workers,
		metrics:   s.Metrics,
		trace:     s.Trace,
		rec:       s.Rec,
	}
}

// benchFailure carries a measurement error out of the panic-style
// experiment bodies; RunExperiment's recover turns it back into an error.
type benchFailure struct{ err error }

// get returns the pooled machine for cfg's shape, creating it on first use.
func (mp *machinePool) get(cfg kamsta.Config) (*kamsta.Machine, error) {
	key := machineKey{pes: cfg.PEs, threads: cfg.Threads, cost: cfg.Cost}
	if key.pes <= 0 {
		key.pes = 4
	}
	if key.threads <= 0 {
		key.threads = 1
	}
	m := mp.ms[key]
	if m == nil {
		var err error
		m, err = kamsta.NewMachine(kamsta.MachineConfig{
			PEs: cfg.PEs, Threads: cfg.Threads, Cost: cfg.Cost, Metrics: mp.metrics,
			Transport: mp.transport, Workers: mp.workers,
		})
		if err != nil {
			return nil, err
		}
		mp.ms[key] = m
	}
	return m, nil
}

// Close releases every pooled machine's parked PE goroutines.
func (mp *machinePool) Close() {
	for k, m := range mp.ms {
		m.Close()
		delete(mp.ms, k)
	}
}

// compute runs one job on a pooled machine, applying the sweep's per-job
// timeout (Scale.Timeout) around the sweep context when one is set.
func (mp *machinePool) compute(m *kamsta.Machine, src kamsta.Source, opts ...kamsta.RunOption) (*kamsta.Report, error) {
	ctx := mp.ctx
	if mp.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, mp.timeout)
		defer cancel()
	}
	return m.Compute(ctx, src, opts...)
}

// measure runs one configuration, repeating per Scale.Reps and keeping the
// run with minimum modeled time.
func (mp *machinePool) measure(spec gen.Spec, cfg kamsta.Config, reps int) *kamsta.Report {
	return mp.measureSource(kamsta.FromSpec(spec), cfg, reps)
}

// measureSource is measure for any input source (generated or file-backed).
func (mp *machinePool) measureSource(src kamsta.Source, cfg kamsta.Config, reps int) *kamsta.Report {
	best, err := mp.measureSourceErr(src, cfg, reps)
	if err != nil {
		panic(benchFailure{err})
	}
	return best
}

// measureSourceErr is the error-returning measurement core: reps runs on
// the pooled machine, keeping the one with minimum modeled time. With a
// Recorder attached it also records one machine-readable row per
// measurement, bracketing the reps with process MemStats for the
// allocation trajectory.
func (mp *machinePool) measureSourceErr(src kamsta.Source, cfg kamsta.Config, reps int) (*kamsta.Report, error) {
	var best *kamsta.Report
	if reps < 1 {
		reps = 1
	}
	m, err := mp.get(cfg)
	if err != nil {
		return nil, err
	}
	opts := cfg.RunOptions()
	if mp.trace != nil {
		opts = append(opts, kamsta.WithTrace(mp.trace))
	}
	var ms0 runtime.MemStats
	if mp.rec != nil {
		runtime.ReadMemStats(&ms0)
	}
	for i := 0; i < reps; i++ {
		rep, err := mp.compute(m, src, opts...)
		if err != nil {
			return nil, err
		}
		if best == nil || rep.ModeledSeconds < best.ModeledSeconds {
			best = rep
		}
	}
	if mp.rec != nil {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		alg := cfg.Algorithm
		if alg == "" {
			alg = kamsta.AlgBoruvka
		}
		pes, threads := cfg.PEs, cfg.Threads
		if pes <= 0 {
			pes = 4
		}
		if threads <= 0 {
			threads = 1
		}
		mp.rec.add(Row{
			Instance:            src.Label(),
			Algorithm:           string(alg),
			PEs:                 pes,
			Threads:             threads,
			Vertices:            best.InputVertices,
			EdgesDirected:       best.InputEdges,
			Rounds:              best.Rounds,
			Reps:                reps,
			ModeledSeconds:      best.ModeledSeconds,
			WallSeconds:         best.WallSeconds,
			InputModeledSeconds: best.InputModeledSeconds,
			EdgesPerSecond:      best.EdgesPerSecond,
			AllocsPerRep:        (ms1.Mallocs - ms0.Mallocs) / uint64(reps),
			AllocBytesPerRep:    (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(reps),
		})
	}
	return best, nil
}

// collectEdges materializes a spec in a small world and returns the full
// directed, globally sorted edge sequence (for writing exhibit files).
func collectEdges(spec gen.Spec, pes int) []graph.Edge {
	chunks := make([][]graph.Edge, pes)
	w := comm.NewWorld(pes)
	w.Run(func(c *comm.Comm) {
		edges, _ := gen.Build(c, spec, dsort.Options{})
		chunks[c.Rank()] = edges
	})
	var all []graph.Edge
	for _, ch := range chunks {
		all = append(all, ch...)
	}
	return all
}

// table returns a tabwriter for aligned output.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// weakSpec builds the weak-scaling instance for family f at p PEs.
func weakSpec(f gen.Family, s Scale, p int) gen.Spec {
	n := s.VPerPE * uint64(p)
	m := s.EPerPE * uint64(p)
	return gen.Spec{Family: f, N: n, M: m, Seed: s.Seed}
}

// Fig3 reproduces the weak-scaling throughput experiment: six families ×
// {boruvka, filterBoruvka, MND-MST, sparseMatrix} × {1, 8} threads,
// throughput in (directed) input edges per modeled second.
func Fig3(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	families := []gen.Family{gen.Grid2D, gen.RGG2D, gen.RGG3D, gen.GNM, gen.RHG, gen.RMAT}
	algs := []string{"boruvka", "filterBoruvka", "MND-MST", "sparseMatrix"}
	threads := []int{1, 8}
	fmt.Fprintf(w, "# Fig. 3 — weak scaling, %d vertices and %d undirected edges per PE\n", s.VPerPE, s.EPerPE)
	tw := table(w)
	fmt.Fprintln(tw, "family\talgorithm\tthreads\tp\tn\tm(dir)\tmodeled_s\twall_s\tedges_per_s")
	for _, f := range families {
		for _, alg := range algs {
			for _, t := range threads {
				for _, p := range s.Ps {
					spec := weakSpec(f, s, p)
					cfg := algConfig(alg, t, s)
					cfg.PEs = p
					rep := mp.measure(spec, cfg, s.Reps)
					fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.4e\t%.3f\t%.4e\n",
						f, alg, t, p, rep.InputVertices, rep.InputEdges,
						rep.ModeledSeconds, rep.WallSeconds, rep.EdgesPerSecond)
				}
			}
		}
		tw.Flush()
	}
}

// Fig2 reproduces the two-level all-to-all ablation: accumulated component
// contraction time for one-level (direct) vs two-level (grid) exchanges on
// GNM weak scaling.
func Fig2(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	fmt.Fprintf(w, "# Fig. 2 — one-level vs two-level all-to-all, contraction phase, GNM weak scaling\n")
	tw := table(w)
	fmt.Fprintln(tw, "p\tvariant\tcontract_modeled_s\ttotal_modeled_s")
	for _, p := range s.Ps {
		spec := weakSpec(gen.GNM, s, p)
		for _, variant := range []struct {
			name string
			a2a  alltoall.Strategy
		}{{"one-level", alltoall.Direct}, {"two-level", alltoall.Grid}} {
			cfg := algConfig("boruvka-nopre", 1, s)
			cfg.PEs = p
			cfg.Core.A2A = variant.a2a
			rep := mp.measure(spec, cfg, s.Reps)
			contract := rep.Phases["contractComponents"]
			fmt.Fprintf(tw, "%d\t%s\t%.4e\t%.4e\n", p, variant.name, contract.Modeled, rep.ModeledSeconds)
		}
	}
	tw.Flush()
}

// Fig4 reproduces the local-preprocessing ablation on the high-locality
// families with the denser per-PE setting, including the fastest
// preprocessing-enabled variant as baseline.
func Fig4(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	families := []gen.Family{gen.Grid2D, gen.RGG2D, gen.RGG3D, gen.RHG}
	fmt.Fprintf(w, "# Fig. 4 — disabled local preprocessing, %d vertices and %d undirected edges per PE\n", s.VPerPE, s.DenseEPerPE)
	tw := table(w)
	fmt.Fprintln(tw, "family\talgorithm\tp\tmodeled_s\twall_s")
	series := []struct {
		name    string
		threads int
	}{
		{"boruvka-nopre", 1}, {"boruvka-nopre", 8},
		{"filterBoruvka-nopre", 1}, {"filterBoruvka-nopre", 8},
		{"boruvka", 8}, // = local-boruvka-8, the preprocessing-on baseline
	}
	for _, f := range families {
		for _, sr := range series {
			for _, p := range s.Ps {
				spec := gen.Spec{Family: f, N: s.VPerPE * uint64(p), M: s.DenseEPerPE * uint64(p), Seed: s.Seed}
				cfg := algConfig(sr.name, sr.threads, s)
				cfg.PEs = p
				rep := mp.measure(spec, cfg, s.Reps)
				label := sr.name
				if sr.name == "boruvka" {
					label = "local-boruvka"
				}
				fmt.Fprintf(tw, "%s\t%s-%d\t%d\t%.4e\t%.3f\n", f, label, sr.threads, p, rep.ModeledSeconds, rep.WallSeconds)
			}
		}
		tw.Flush()
	}
}

// Fig5 reproduces the strong-scaling experiment on the Table I stand-ins.
func Fig5(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	algs := []string{"boruvka", "filterBoruvka", "MND-MST", "sparseMatrix"}
	threads := []int{1, 8}
	fmt.Fprintf(w, "# Fig. 5 — strong scaling on real-world stand-ins (scale 1/%d)\n", s.RealWorldScale)
	tw := table(w)
	fmt.Fprintln(tw, "graph\talgorithm\tthreads\tp\tmodeled_s\twall_s")
	for _, name := range gen.RealWorldNames() {
		spec, err := gen.RealWorldSpec(name, s.RealWorldScale, s.Seed)
		if err != nil {
			panic(err)
		}
		for _, alg := range algs {
			for _, t := range threads {
				for _, p := range s.Ps {
					cfg := algConfig(alg, t, s)
					cfg.PEs = p
					rep := mp.measure(spec, cfg, s.Reps)
					fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.4e\t%.3f\n",
						name, alg, t, p, rep.ModeledSeconds, rep.WallSeconds)
				}
			}
		}
		tw.Flush()
	}
}

// Fig6 reproduces the normalized phase breakdown for 3D-RGG, GNM and RMAT
// across the b1/b8/f1/f8 variants.
func Fig6(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	families := []gen.Family{gen.RGG3D, gen.GNM, gen.RMAT}
	variants := []struct {
		label   string
		alg     string
		threads int
	}{
		{"b1", "boruvka", 1}, {"b8", "boruvka", 8},
		{"f1", "filterBoruvka", 1}, {"f8", "filterBoruvka", 8},
	}
	phases := []string{
		"localPreprocessing", "graphSetup+minEdges", "contractComponents",
		"exchangeLabels+relabel", "redistribute", "basecase+redistributeMST",
		"partition+filter",
	}
	fmt.Fprintf(w, "# Fig. 6 — normalized running-time breakdown\n")
	tw := table(w)
	fmt.Fprintf(tw, "family\tp\tvariant\ttotal_s")
	for _, ph := range phases {
		fmt.Fprintf(tw, "\t%s", ph)
	}
	fmt.Fprintln(tw, "\tmisc")
	for _, f := range families {
		for _, p := range s.Ps {
			spec := weakSpec(f, s, p)
			for _, v := range variants {
				cfg := algConfig(v.alg, v.threads, s)
				cfg.PEs = p
				rep := mp.measure(spec, cfg, s.Reps)
				total := rep.ModeledSeconds
				fmt.Fprintf(tw, "%s\t%d\t%s\t%.4e", f, p, v.label, total)
				accounted := 0.0
				for _, ph := range phases {
					t := rep.Phases[ph].Modeled
					accounted += t
					fmt.Fprintf(tw, "\t%.3f", safeFrac(t, total))
				}
				fmt.Fprintf(tw, "\t%.3f\n", safeFrac(total-accounted, total))
			}
		}
		tw.Flush()
	}
}

func safeFrac(x, total float64) float64 {
	if total <= 0 {
		return 0
	}
	f := x / total
	if f < 0 {
		return 0
	}
	return f
}

// Table1 prints the real-world instance inventory with both the paper's
// original sizes and the stand-in sizes at the configured scale.
func Table1(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	fmt.Fprintf(w, "# Table I — real-world instances and their stand-ins (scale 1/%d)\n", s.RealWorldScale)
	tw := table(w)
	fmt.Fprintln(tw, "graph\ttype\tpaper_n\tpaper_m(dir)\tstandin\tn\tm(dir)")
	for _, name := range gen.RealWorldNames() {
		info, err := gen.RealWorldInfo(name)
		if err != nil {
			panic(err)
		}
		spec, err := gen.RealWorldSpec(name, s.RealWorldScale, s.Seed)
		if err != nil {
			panic(err)
		}
		cfg := algConfig("boruvka", 1, s)
		cfg.PEs = 4
		rep := mp.measure(spec, cfg, 1)
		fmt.Fprintf(tw, "%s\t%s\t%.3e\t%.3e\t%s\t%d\t%d\n",
			name, info.Type, float64(info.PaperN), float64(info.PaperM),
			spec.Family, rep.InputVertices, rep.InputEdges)
	}
	tw.Flush()
}

// SharedMemory reproduces the §VII-C comparison: the shared-memory baseline
// (our local MSF with t threads, standing in for MASTIFF) against the
// distributed algorithms at increasing PE counts on the same instance.
func SharedMemory(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	fmt.Fprintf(w, "# §VII-C — shared-memory baseline vs distributed algorithms\n")
	specs := []struct {
		name string
		spec gen.Spec
	}{}
	for _, name := range []string{"twitter", "friendster", "US-road"} {
		spec, err := gen.RealWorldSpec(name, s.RealWorldScale, s.Seed)
		if err != nil {
			panic(err)
		}
		specs = append(specs, struct {
			name string
			spec gen.Spec
		}{name, spec})
	}
	tw := table(w)
	fmt.Fprintln(tw, "graph\tconfig\tmodeled_s\twall_s")
	for _, it := range specs {
		// Shared-memory baseline: one PE, many threads (node-local work
		// only; the modeled time has no communication terms).
		cfg := algConfig("boruvka", 8, s)
		cfg.PEs = 1
		rep := mp.measure(it.spec, cfg, s.Reps)
		fmt.Fprintf(tw, "%s\tshared-memory-8t\t%.4e\t%.3f\n", it.name, rep.ModeledSeconds, rep.WallSeconds)
		for _, p := range s.Ps {
			cfg := algConfig("boruvka", 8, s)
			cfg.PEs = p
			rep := mp.measure(it.spec, cfg, s.Reps)
			fmt.Fprintf(tw, "%s\tboruvka-8 p=%d\t%.4e\t%.3f\n", it.name, p, rep.ModeledSeconds, rep.WallSeconds)
		}
	}
	tw.Flush()
}

// FileBackedTable1 reproduces the Table I runs the way the paper's own
// pipeline works — graphs come from files, not from in-simulation
// generators: every stand-in is generated once, written to a cached binary
// kamsta file, and each measurement re-ingests that file with parallel
// per-PE byte-range reads before running the algorithm. load_s is the
// modeled time of ingestion + global sort (Report.InputModeledSeconds);
// modeled_s the algorithm itself.
func FileBackedTable1(ctx context.Context, w io.Writer, s Scale) {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	dir, err := os.MkdirTemp("", "kamsta-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	fmt.Fprintf(w, "# Table I, file-backed — instances written once to binary files, re-ingested per run (scale 1/%d)\n", s.RealWorldScale)
	tw := table(w)
	fmt.Fprintln(tw, "graph\tfile_bytes\talgorithm\tp\tload_s\tmodeled_s\twall_s")
	for _, name := range gen.RealWorldNames() {
		spec, err := gen.RealWorldSpec(name, s.RealWorldScale, s.Seed)
		if err != nil {
			panic(err)
		}
		path := filepath.Join(dir, name+".kg")
		if err := graphio.WriteFile(path, graphio.FormatKamsta, collectEdges(spec, 4)); err != nil {
			panic(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			panic(err)
		}
		src := kamsta.FromFile(path)
		for _, alg := range []string{"boruvka", "filterBoruvka"} {
			for _, p := range s.Ps {
				cfg := algConfig(alg, 1, s)
				cfg.PEs = p
				rep := mp.measureSource(src, cfg, s.Reps)
				fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.4e\t%.4e\t%.3f\n",
					name, st.Size(), alg, p, rep.InputModeledSeconds, rep.ModeledSeconds, rep.WallSeconds)
			}
		}
		tw.Flush()
	}
}

// RunFile benchmarks the paper's algorithms on a user-supplied graph file
// across the configured PE counts (cmd/mstbench -input).
func RunFile(ctx context.Context, w io.Writer, path, format string, algs []kamsta.Algorithm, s Scale) error {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	if s.Rec != nil {
		s.Rec.SetBenchmark("file")
	}
	src := kamsta.FromFileFormat(path, format)
	fmt.Fprintf(w, "# file-backed run — %s\n", path)
	tw := table(w)
	fmt.Fprintln(tw, "algorithm\tp\tn\tm(dir)\tload_s\tmodeled_s\twall_s\tedges_per_s")
	if len(algs) == 0 {
		algs = kamsta.DistributedAlgorithms()
	}
	// Per algorithm, keep the report at the largest PE count for the
	// per-phase breakdown printed after the main table.
	type phaseRep struct {
		alg kamsta.Algorithm
		p   int
		rep *kamsta.Report
	}
	var breakdown []phaseRep
	for _, alg := range algs {
		var last *kamsta.Report
		lastP := 0
		for _, p := range s.Ps {
			cfg := seriesConfig(alg, 1, s)
			cfg.PEs = p
			rep, err := mp.measureSourceErr(src, cfg, s.Reps)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.4e\t%.4e\t%.3f\t%.4e\n",
				alg, p, rep.InputVertices, rep.InputEdges,
				rep.InputModeledSeconds, rep.ModeledSeconds, rep.WallSeconds, rep.EdgesPerSecond)
			if p >= lastP {
				last, lastP = rep, p
			}
		}
		if last != nil && len(last.Phases) > 0 {
			breakdown = append(breakdown, phaseRep{alg, lastP, last})
		}
	}
	tw.Flush()
	for _, br := range breakdown {
		fmt.Fprintf(w, "\n# phase breakdown — %s, p=%d\n", br.alg, br.p)
		ptw := table(w)
		fmt.Fprintln(ptw, "phase\tmodeled_s\twall_s\tmsgs\tbytes\tcollectives")
		names := make([]string, 0, len(br.rep.Phases))
		for ph := range br.rep.Phases {
			names = append(names, ph)
		}
		sort.Strings(names)
		for _, ph := range names {
			pt := br.rep.Phases[ph]
			fmt.Fprintf(ptw, "%s\t%.4e\t%.3f\t%d\t%d\t%d\n",
				ph, pt.Modeled, pt.Wall.Seconds(), pt.Stats.Messages, pt.Stats.Bytes, pt.Stats.Collectives)
		}
		ptw.Flush()
	}
	return nil
}

// Experiment is one runnable figure/table reproduction. Cancelling ctx
// aborts the in-flight job at its next collective boundary; the resulting
// failure surfaces through RunExperiment.
type Experiment func(ctx context.Context, w io.Writer, s Scale)

// RunExperiment executes one named experiment, converting measurement
// failures — including cancellation of ctx — into an error instead of a
// panic trace.
func RunExperiment(ctx context.Context, id string, w io.Writer, s Scale) error {
	run, ok := Experiments()[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ExperimentNames(), ", "))
	}
	if s.Rec != nil {
		s.Rec.SetBenchmark(id)
	}
	return runCaptured(func() { run(ctx, w, s) })
}

// runCaptured converts a benchFailure panic back into the error it wraps;
// any other panic (a harness bug) propagates.
func runCaptured(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if bf, ok := r.(benchFailure); ok {
				err = bf.err
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// Experiments maps experiment ids to runners.
func Experiments() map[string]Experiment {
	return map[string]Experiment{
		"fig2":       Fig2,
		"fig3":       Fig3,
		"fig4":       Fig4,
		"fig5":       Fig5,
		"fig6":       Fig6,
		"table1":     Table1,
		"table1file": FileBackedTable1,
		"shared":     SharedMemory,
	}
}

// ExperimentNames lists experiment ids in order.
func ExperimentNames() []string {
	names := make([]string, 0)
	for k := range Experiments() {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
