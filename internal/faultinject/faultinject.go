// Package faultinject provides deterministic, seeded fault injection for
// the simulated machine — the in-process analogue of the chaos harnesses
// consensus-style systems use to prove their failure model. A Plan is a
// set of Rules, each naming an injection site, a rank, and the occurrence
// index (per site, per rank) at which it fires, plus the action to take:
// panic, delay, or a synthetic I/O error.
//
// Determinism is the whole point: given the same Plan and the same
// program, the same fault fires at the same place on every run, so a chaos
// schedule that exposes a containment bug is replayable from its seed
// alone. Occurrence counters are kept per (site, rank) in a per-job
// Injector; the fired flags live on the shared Plan, so a Rule fires at
// most once across a job AND its retries — which is what makes an injected
// fault "transient" from the caller's point of view.
//
// The package is a leaf: internal/comm triggers SiteCollective on every
// collective boundary, internal/graphio triggers SiteGraphRead on every
// bulk file read, and neither direction imports the other.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Site names an injection point class.
type Site uint8

const (
	// SiteCollective fires at a collective boundary: just before the PE
	// deposits into superstep number Occurrence of its job.
	SiteCollective Site = iota
	// SiteGraphRead fires at a graph-file read: just before the PE's
	// Occurrence-th bulk read during distributed ingestion.
	SiteGraphRead

	numSites
)

// String names the site for diagnostics.
func (s Site) String() string {
	switch s {
	case SiteCollective:
		return "collective"
	case SiteGraphRead:
		return "graphRead"
	}
	return "(unknown site)"
}

// Action is what an armed Rule does when it fires.
type Action uint8

const (
	// ActNone is the zero action (rule disabled).
	ActNone Action = iota
	// ActPanic panics with an InjectedPanic value — the stand-in for an
	// algorithm bug or SPMD divergence on one PE.
	ActPanic
	// ActDelay sleeps for the rule's Delay — the stand-in for a straggler
	// or a divergent collective (pair it with a stall timeout).
	ActDelay
	// ActIOError returns ErrInjected from the site — meaningful only at
	// SiteGraphRead, where it models a failed file read; collective sites
	// ignore it.
	ActIOError
)

// String names the action for diagnostics.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	case ActIOError:
		return "ioError"
	}
	return "(unknown action)"
}

// ErrInjected is the synthetic error ActIOError surfaces; sites wrap it
// with position details, so test for it with errors.Is.
var ErrInjected = errors.New("faultinject: injected I/O error")

// InjectedPanic is the value an ActPanic rule panics with.
type InjectedPanic struct {
	Site       Site
	Rank       int
	Occurrence int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected panic at %v site, rank %d, occurrence %d", p.Site, p.Rank, p.Occurrence)
}

// Rule arms one fault: at the Occurrence-th visit of Site on Rank, take
// Action. Each Rule fires at most once per Plan lifetime.
type Rule struct {
	Site       Site
	Rank       int
	Occurrence int
	Action     Action
	// Delay is the sleep duration for ActDelay.
	Delay time.Duration

	fired atomic.Bool
}

// Plan is a set of armed Rules shared across the jobs (and retries) of one
// chaos schedule. The zero Plan injects nothing.
type Plan struct {
	rules []*Rule
}

// NewPlan builds a plan from rules. The rules are shared, not copied:
// their fired flags carry across every Injector derived from the plan.
func NewPlan(rules ...*Rule) *Plan { return &Plan{rules: rules} }

// Rules returns the plan's rules (for diagnostics and test assertions).
func (p *Plan) Rules() []*Rule { return p.rules }

// Exhausted reports whether every rule of the plan has fired — after which
// a retried job runs fault-free.
func (p *Plan) Exhausted() bool {
	for _, r := range p.rules {
		if r.Action != ActNone && !r.fired.Load() {
			return false
		}
	}
	return true
}

// Fired reports whether rule i has fired.
func (r *Rule) Fired() bool { return r.fired.Load() }

// Injector is the per-job stateful view of a Plan: it keeps the
// (site, rank) occurrence counters that make rule matching deterministic.
// Create one per job with Plan.Injector. Each rank's counters are touched
// only by that rank's goroutine.
type Injector struct {
	plan     *Plan
	counters [numSites][]int
}

// Injector derives a fresh per-job injector for a p-PE world. A nil plan
// returns a nil injector, which injects nothing.
func (p *Plan) Injector(pes int) *Injector {
	if p == nil || len(p.rules) == 0 {
		return nil
	}
	inj := &Injector{plan: p}
	for s := range inj.counters {
		inj.counters[s] = make([]int, pes)
	}
	return inj
}

// Check visits one injection point and returns the armed rule that fires
// there, or nil. The caller applies the action (panic, sleep, error): the
// injector itself never panics, so sites keep control over how a fault
// enters the program.
func (in *Injector) Check(site Site, rank int) *Rule {
	if in == nil {
		return nil
	}
	n := in.counters[site][rank]
	in.counters[site][rank] = n + 1
	for _, r := range in.plan.rules {
		if r.Site == site && r.Rank == rank && r.Occurrence == n &&
			r.Action != ActNone && r.fired.CompareAndSwap(false, true) {
			return r
		}
	}
	return nil
}

// RandomSpec bounds RandomPlan's schedule generation.
type RandomSpec struct {
	// PEs is the world width faults are drawn over.
	PEs int
	// MaxOccurrence bounds the occurrence index (exclusive) at collective
	// sites; rules may land past the job's last superstep and never fire —
	// that is a valid schedule (fault-free run).
	MaxOccurrence int
	// MaxReadOccurrence bounds the occurrence index at graph-read sites
	// (default 2: ingestion performs few bulk reads per PE).
	MaxReadOccurrence int
	// MaxRules bounds the number of armed rules (at least 1 is drawn).
	MaxRules int
	// MaxDelay bounds ActDelay sleeps (default 10ms).
	MaxDelay time.Duration
	// Reads enables SiteGraphRead rules (only useful for file-backed jobs).
	Reads bool
}

// RandomPlan derives a deterministic fault schedule from a seed: which
// ranks fault, at which supersteps, and how, are all pure functions of
// (seed, spec). The same seed always produces the same schedule.
func RandomPlan(seed uint64, spec RandomSpec) *Plan {
	rng := rand.New(rand.NewSource(int64(seed)))
	if spec.PEs < 1 {
		spec.PEs = 1
	}
	if spec.MaxOccurrence < 1 {
		spec.MaxOccurrence = 32
	}
	if spec.MaxReadOccurrence < 1 {
		spec.MaxReadOccurrence = 2
	}
	if spec.MaxRules < 1 {
		spec.MaxRules = 2
	}
	if spec.MaxDelay <= 0 {
		spec.MaxDelay = 10 * time.Millisecond
	}
	n := 1 + rng.Intn(spec.MaxRules)
	rules := make([]*Rule, 0, n)
	for i := 0; i < n; i++ {
		r := &Rule{Rank: rng.Intn(spec.PEs)}
		if spec.Reads && rng.Intn(3) == 0 {
			r.Site = SiteGraphRead
			r.Occurrence = rng.Intn(spec.MaxReadOccurrence)
			if rng.Intn(2) == 0 {
				r.Action = ActIOError
			} else {
				r.Action = ActPanic
			}
		} else {
			r.Site = SiteCollective
			r.Occurrence = rng.Intn(spec.MaxOccurrence)
			switch rng.Intn(3) {
			case 0:
				r.Action = ActDelay
				r.Delay = time.Duration(1 + rng.Int63n(int64(spec.MaxDelay)))
			default:
				r.Action = ActPanic
			}
		}
		rules = append(rules, r)
	}
	return NewPlan(rules...)
}
