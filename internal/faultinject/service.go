// Service-level chaos schedules: where a Plan injects faults inside one
// job's world, a ServiceSchedule scripts an entire serving scenario — which
// tenants submit what, which jobs carry world-killing faults or stalls,
// which arrive with hopeless deadlines, which get cancelled mid-flight —
// plus the server-side resilience knobs (retry budget, quarantine,
// batching) the scenario runs under. Like Plans, schedules are pure
// functions of their seed: a sweep failure is replayable from the seed
// alone.
//
// The package stays a leaf: a schedule only describes the scenario in
// plain values; internal/serve's chaos tests translate each ServiceJob
// into a Request (attaching a Plan via kamsta.WithFaultInjection for the
// faulting ones) and assert the exactly-once invariants.
package faultinject

import (
	"math/rand"
	"time"
)

// ServiceFault classifies the chaos one submitted job carries.
type ServiceFault uint8

const (
	// SvcNone: a clean job.
	SvcNone ServiceFault = iota
	// SvcPanic: the job panics on one PE mid-run, killing its world (the
	// Machine contains it as a *kamsta.JobError and rebuilds).
	SvcPanic
	// SvcStall: one PE of the job sleeps past the stall timeout, so the
	// watchdog kills the job.
	SvcStall
	// SvcExpiredDeadline: the job arrives with a deadline too small to ever
	// meet — a deadline-storm member that must be shed at admission or fail
	// fast with outcome "deadline", never burn machine time to completion.
	SvcExpiredDeadline
	// SvcCancel: the client cancels the job right after submitting it.
	SvcCancel

	numServiceFaults
)

// String names the fault for diagnostics.
func (f ServiceFault) String() string {
	switch f {
	case SvcNone:
		return "none"
	case SvcPanic:
		return "panic"
	case SvcStall:
		return "stall"
	case SvcExpiredDeadline:
		return "expiredDeadline"
	case SvcCancel:
		return "cancel"
	}
	return "(unknown service fault)"
}

// ServiceJob is one scripted submission.
type ServiceJob struct {
	// Tenant is an index into the schedule's tenant set.
	Tenant int
	// Fault is the chaos this job carries.
	Fault ServiceFault
	// Edges sizes the job's random edge-list instance.
	Edges int
	// Seed drives the instance (and the fault plan, for faulting jobs).
	Seed uint64
	// Deadline is the job's deadline (0 = none). SvcExpiredDeadline jobs
	// carry a deliberately hopeless one.
	Deadline time.Duration
	// Gap is the submit spacing before this job (deadline storms arrive in
	// a burst: zero gaps).
	Gap time.Duration
	// NoBatch opts the job out of batching; Pin pins it to the first pool
	// shape.
	NoBatch bool
	Pin     bool
	// Rank and Occurrence position the injected fault inside the job's
	// world (SvcPanic, SvcStall).
	Rank       int
	Occurrence int
}

// ServiceSchedule is one full scenario: the jobs plus the resilience
// configuration the server under test should run with.
type ServiceSchedule struct {
	Seed    uint64
	Tenants int
	Jobs    []ServiceJob

	// Server-side knobs, drawn from the seed so the sweep covers the
	// config space: retries on/off, quarantine threshold (0 = off),
	// batching on/off, queue bound.
	RetryAttempts   int
	QuarantineAfter int
	Batch           bool
	QueueBound      int
}

// ServiceSpec bounds RandomServiceSchedule.
type ServiceSpec struct {
	// PEs is the pool shape width faults are drawn over.
	PEs int
	// MaxJobs bounds the number of scripted jobs (at least 4 are drawn).
	MaxJobs int
	// MaxEdges bounds instance sizes (default 24; kept small so sweeps of
	// hundreds of schedules stay fast under -race).
	MaxEdges int
	// FaultFraction is the approximate fraction of jobs carrying a fault
	// (default 0.5 — chaos sweeps want faults to dominate).
	FaultFraction float64
	// StormFraction is the approximate fraction of schedules that append a
	// deadline storm: a burst of SvcExpiredDeadline jobs (default 0.3).
	StormFraction float64
}

// RandomServiceSchedule derives a deterministic scenario from a seed. The
// same (seed, spec) always yields the same schedule.
func RandomServiceSchedule(seed uint64, spec ServiceSpec) ServiceSchedule {
	rng := rand.New(rand.NewSource(int64(seed)))
	if spec.PEs < 1 {
		spec.PEs = 2
	}
	if spec.MaxJobs < 4 {
		spec.MaxJobs = 12
	}
	if spec.MaxEdges < 4 {
		spec.MaxEdges = 24
	}
	if spec.FaultFraction <= 0 {
		spec.FaultFraction = 0.5
	}
	if spec.StormFraction <= 0 {
		spec.StormFraction = 0.3
	}

	sch := ServiceSchedule{
		Seed:       seed,
		Tenants:    1 + rng.Intn(3),
		Batch:      rng.Intn(2) == 0,
		QueueBound: 8 + rng.Intn(25),
	}
	if rng.Intn(2) == 0 {
		sch.RetryAttempts = 2 + rng.Intn(3)
	}
	if rng.Intn(3) == 0 {
		sch.QuarantineAfter = 2 + rng.Intn(3)
	}

	n := 4 + rng.Intn(spec.MaxJobs-3)
	for i := 0; i < n; i++ {
		j := ServiceJob{
			Tenant: rng.Intn(sch.Tenants),
			Edges:  4 + rng.Intn(spec.MaxEdges-3),
			Seed:   rng.Uint64(),
			Gap:    time.Duration(rng.Intn(3)) * time.Millisecond,
		}
		if rng.Float64() < spec.FaultFraction {
			switch rng.Intn(3) {
			case 0:
				j.Fault = SvcPanic
			case 1:
				j.Fault = SvcStall
			default:
				j.Fault = SvcCancel
			}
			j.Rank = rng.Intn(spec.PEs)
			j.Occurrence = rng.Intn(4)
		}
		if rng.Intn(4) == 0 {
			j.NoBatch = true
		}
		if rng.Intn(5) == 0 {
			j.Pin = true
		}
		sch.Jobs = append(sch.Jobs, j)
	}

	// Some schedules end in a deadline storm: a burst of jobs whose
	// deadlines are already hopeless on arrival. They must resolve as shed
	// or deadline — never occupy a machine to completion.
	if rng.Float64() < spec.StormFraction {
		storm := 3 + rng.Intn(5)
		for i := 0; i < storm; i++ {
			sch.Jobs = append(sch.Jobs, ServiceJob{
				Tenant:   rng.Intn(sch.Tenants),
				Fault:    SvcExpiredDeadline,
				Edges:    4 + rng.Intn(spec.MaxEdges-3),
				Seed:     rng.Uint64(),
				Deadline: time.Microsecond,
			})
		}
	}
	return sch
}
