// Package sizeof provides the element-size helper shared by the modeled-cost
// accounting in internal/comm and internal/alltoall. Collectives charge
// β-cost per byte, so they need the in-memory size of the element type on
// every call; the previous per-package helpers asked reflect for it each
// time, which costs a map lookup and an allocation-prone interface dance on
// the hottest path of the simulator.
package sizeof

import "unsafe"

// Of returns the in-memory size of T in bytes for cost accounting. It
// compiles to a constant per instantiation (unsafe.Sizeof is evaluated at
// compile time), so calling it per collective is free — no reflect, no
// caching needed.
func Of[T any]() int {
	var z T
	return int(unsafe.Sizeof(z))
}
