package gen

import (
	"math"
	"sort"
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/graph"
)

// buildAll runs Build on a p-PE world and returns the concatenated global
// edge list plus per-rank chunks.
func buildAll(t *testing.T, p int, spec Spec) ([]graph.Edge, [][]graph.Edge) {
	t.Helper()
	w := comm.NewWorld(p)
	chunks := make([][]graph.Edge, p)
	w.Run(func(c *comm.Comm) {
		edges, layout := Build(c, spec, dsort.Options{})
		chunks[c.Rank()] = edges
		if layout.TotalEdges() == 0 && spec.N > 1 {
			t.Errorf("%s: empty graph generated", spec.Label())
		}
	})
	var all []graph.Edge
	for _, ch := range chunks {
		all = append(all, ch...)
	}
	return all, chunks
}

// checkInputFormat verifies the §II-B input invariants: globally sorted,
// symmetric, no self-loops, no duplicates, consecutive IDs, sane labels.
func checkInputFormat(t *testing.T, spec Spec, all []graph.Edge, chunks [][]graph.Edge) {
	t.Helper()
	if !graph.IsSorted(all) {
		t.Fatalf("%s: global edge sequence not sorted", spec.Label())
	}
	type pair struct{ U, V graph.VID }
	seen := map[pair]graph.Weight{}
	for i, e := range all {
		if e.U == e.V {
			t.Fatalf("%s: self-loop %v", spec.Label(), e)
		}
		if e.U == 0 || e.V == 0 {
			t.Fatalf("%s: zero label in %v", spec.Label(), e)
		}
		if e.ID != uint64(i) {
			t.Fatalf("%s: edge %d has ID %d", spec.Label(), i, e.ID)
		}
		if _, dup := seen[pair{e.U, e.V}]; dup {
			t.Fatalf("%s: duplicate edge %v", spec.Label(), e)
		}
		seen[pair{e.U, e.V}] = e.W
	}
	for pr, w := range seen {
		w2, ok := seen[pair{pr.V, pr.U}]
		if !ok {
			t.Fatalf("%s: back edge of (%d,%d) missing", spec.Label(), pr.U, pr.V)
		}
		if w != w2 {
			t.Fatalf("%s: asymmetric weights on (%d,%d): %d vs %d", spec.Label(), pr.U, pr.V, w, w2)
		}
	}
	// Balanced distribution (±1).
	m := len(all)
	p := len(chunks)
	for r, ch := range chunks {
		if len(ch) < m/p || len(ch) > (m+p-1)/p {
			t.Fatalf("%s: rank %d holds %d of %d edges on %d PEs", spec.Label(), r, len(ch), m, p)
		}
	}
}

func smallSpecs() []Spec {
	return []Spec{
		{Family: Grid2D, N: 100, Seed: 1},
		{Family: RGG2D, N: 150, M: 600, Seed: 2},
		{Family: RGG3D, N: 150, M: 700, Seed: 3},
		{Family: RHG, N: 200, M: 800, Seed: 4},
		{Family: GNM, N: 120, M: 500, Seed: 5},
		{Family: RMAT, N: 128, M: 500, Seed: 6},
		{Family: RoadLike, N: 100, Seed: 7},
	}
}

func TestAllFamiliesInputFormat(t *testing.T) {
	for _, spec := range smallSpecs() {
		for _, p := range []int{1, 3, 4, 8} {
			all, chunks := buildAll(t, p, spec)
			checkInputFormat(t, spec, all, chunks)
		}
	}
}

func TestInstanceIndependentOfWorldSize(t *testing.T) {
	// The logical graph (set of undirected edges) must not depend on p.
	for _, spec := range smallSpecs() {
		ref, _ := buildAll(t, 1, spec)
		for _, p := range []int{2, 5} {
			got, _ := buildAll(t, p, spec)
			if len(got) != len(ref) {
				t.Fatalf("%s: edge count differs between p=1 (%d) and p=%d (%d)",
					spec.Label(), len(ref), p, len(got))
			}
			for i := range ref {
				if got[i].U != ref[i].U || got[i].V != ref[i].V || got[i].W != ref[i].W {
					t.Fatalf("%s: edge %d differs between p=1 and p=%d", spec.Label(), i, p)
				}
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	spec := Spec{Family: GNM, N: 100, M: 400, Seed: 11}
	a, _ := buildAll(t, 4, spec)
	b, _ := buildAll(t, 4, spec)
	if len(a) != len(b) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic edge %d", i)
		}
	}
}

func TestSeedChangesInstance(t *testing.T) {
	a, _ := buildAll(t, 2, Spec{Family: GNM, N: 100, M: 400, Seed: 1})
	b, _ := buildAll(t, 2, Spec{Family: GNM, N: 100, M: 400, Seed: 2})
	same := 0
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestGridShape(t *testing.T) {
	for _, n := range []uint64{1, 2, 4, 9, 10, 100, 101, 1 << 10} {
		r, c := gridShape(n)
		if r*c < n {
			t.Fatalf("gridShape(%d) = %dx%d too small", n, r, c)
		}
		if r > 0 && (r-1)*c >= n {
			t.Fatalf("gridShape(%d) = %dx%d wastes a full row", n, r, c)
		}
	}
}

func TestGridDegreesBounded(t *testing.T) {
	all, _ := buildAll(t, 2, Spec{Family: Grid2D, N: 100, Seed: 1})
	deg := map[graph.VID]int{}
	for _, e := range all {
		deg[e.U]++
	}
	for v, d := range deg {
		if d > 4 {
			t.Fatalf("grid vertex %d has degree %d > 4", v, d)
		}
	}
}

func TestGridEdgeCount(t *testing.T) {
	// R×C grid has R(C-1) + C(R-1) undirected edges.
	all, _ := buildAll(t, 1, Spec{Family: Grid2D, N: 100, Seed: 1})
	r, c := gridShape(100)
	want := int(2 * (r*(c-1) + c*(r-1))) // directed
	if len(all) != want {
		t.Fatalf("grid has %d directed edges, want %d", len(all), want)
	}
}

func TestGridLocality(t *testing.T) {
	// With row striping, most edges must connect nearby labels.
	all, _ := buildAll(t, 1, Spec{Family: Grid2D, N: 400, Seed: 1})
	_, cols := gridShape(400)
	for _, e := range all {
		d := int64(e.U) - int64(e.V)
		if d < 0 {
			d = -d
		}
		if d != 1 && d != int64(cols) {
			t.Fatalf("grid edge %v connects labels at distance %d (cols=%d)", e, d, cols)
		}
	}
}

func TestRGGEdgesRespectRadius(t *testing.T) {
	spec := Spec{Family: RGG2D, N: 200, M: 800, Seed: 9}
	all, _ := buildAll(t, 3, spec)
	// Regenerate the geometry to obtain point positions.
	deg := float64(2*spec.M) / float64(spec.N)
	radius := math.Sqrt(deg / (math.Pi * float64(spec.N)))
	g := newRGGGeom(spec.N, radius, 2)
	pos := map[graph.VID][3]float64{}
	for cell := uint64(0); cell < g.totalCells; cell++ {
		for _, pt := range g.cellPoints(spec.Seed, cell) {
			pos[pt.id] = pt.pos
		}
	}
	if len(pos) != int(spec.N) {
		t.Fatalf("geometry generated %d points, want %d", len(pos), spec.N)
	}
	for _, e := range all {
		a, b := pos[e.U], pos[e.V]
		d := math.Hypot(a[0]-b[0], a[1]-b[1])
		if d > radius*1.0000001 {
			t.Fatalf("edge %v spans distance %.4f > radius %.4f", e, d, radius)
		}
	}
}

func TestRGGAverageDegreeNearTarget(t *testing.T) {
	spec := Spec{Family: RGG2D, N: 2000, M: 16000, Seed: 13}
	all, _ := buildAll(t, 4, spec)
	gotDeg := float64(len(all)) / float64(spec.N)
	wantDeg := float64(2*spec.M) / float64(spec.N)
	if gotDeg < wantDeg*0.5 || gotDeg > wantDeg*1.6 {
		t.Fatalf("RGG2D average degree %.1f far from target %.1f", gotDeg, wantDeg)
	}
}

func TestRHGPowerLawTail(t *testing.T) {
	spec := Spec{Family: RHG, N: 3000, M: 15000, Seed: 21}
	all, _ := buildAll(t, 4, spec)
	deg := map[graph.VID]int{}
	for _, e := range all {
		deg[e.U]++
	}
	var ds []int
	for _, d := range deg {
		ds = append(ds, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	avg := float64(len(all)) / float64(len(ds))
	// A power-law family must have hubs far above the mean...
	if float64(ds[0]) < 5*avg {
		t.Fatalf("RHG max degree %d not hub-like (avg %.1f)", ds[0], avg)
	}
	// ...and a majority of vertices below the mean.
	below := 0
	for _, d := range ds {
		if float64(d) < avg {
			below++
		}
	}
	if below < len(ds)/2 {
		t.Fatalf("RHG degree distribution not skewed: %d of %d below mean", below, len(ds))
	}
}

func TestGNMEdgeCountNearTarget(t *testing.T) {
	spec := Spec{Family: GNM, N: 1000, M: 5000, Seed: 31}
	all, _ := buildAll(t, 4, spec)
	got := len(all) / 2
	if got < int(spec.M)*90/100 || got > int(spec.M) {
		t.Fatalf("GNM has %d undirected edges, target %d", got, spec.M)
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	spec := Spec{Family: RMAT, N: 1 << 11, M: 16000, Seed: 41}
	all, _ := buildAll(t, 4, spec)
	deg := map[graph.VID]int{}
	for _, e := range all {
		deg[e.U]++
	}
	maxDeg, sum := 0, 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		sum += d
	}
	avg := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 8*avg {
		t.Fatalf("RMAT max degree %d not skewed (avg %.1f)", maxDeg, avg)
	}
}

func TestScrambleIsBijection(t *testing.T) {
	for _, n := range []uint64{10, 64, 100, 1000} {
		bits := 0
		for v := uint64(1); v < n; v <<= 1 {
			bits++
		}
		seen := make(map[uint64]bool, n)
		for x := uint64(0); x < n; x++ {
			y := scramble(x, 7, bits, n)
			if y >= n {
				t.Fatalf("scramble(%d) = %d out of range n=%d", x, y, n)
			}
			if seen[y] {
				t.Fatalf("scramble collision at %d (n=%d)", y, n)
			}
			seen[y] = true
		}
	}
}

func TestLocalityContrast(t *testing.T) {
	// The fraction of "local" edges (|u-v| small) must be ordered
	// grid > rhg > gnm — the central premise of the locality discussion.
	frac := func(spec Spec) float64 {
		all, _ := buildAll(t, 4, spec)
		if len(all) == 0 {
			return 0
		}
		local := 0
		for _, e := range all {
			d := int64(e.U) - int64(e.V)
			if d < 0 {
				d = -d
			}
			if d <= int64(spec.N)/16 {
				local++
			}
		}
		return float64(local) / float64(len(all))
	}
	grid := frac(Spec{Family: Grid2D, N: 1024, Seed: 3})
	rhg := frac(Spec{Family: RHG, N: 1024, M: 8192, Seed: 3})
	gnm := frac(Spec{Family: GNM, N: 1024, M: 8192, Seed: 3})
	if !(grid > rhg && rhg > gnm) {
		t.Fatalf("locality ordering violated: grid=%.2f rhg=%.2f gnm=%.2f", grid, rhg, gnm)
	}
}

func TestRealWorldSpecs(t *testing.T) {
	names := RealWorldNames()
	if testing.Short() {
		// The full Table I sweep builds every stand-in instance at 2^14
		// vertices and dominates this package's test time (~17s); one
		// social and one web instance keep the format check meaningful.
		names = []string{names[0], names[2]}
	}
	for _, name := range names {
		spec, err := RealWorldSpec(name, 1<<14, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		all, chunks := buildAll(t, 4, spec)
		checkInputFormat(t, spec, all, chunks)
	}
}

func TestRealWorldUnknownName(t *testing.T) {
	if _, err := RealWorldSpec("nope", 1, 1); err == nil {
		t.Fatal("expected error for unknown instance")
	}
}

func TestRealWorldInfoMetadata(t *testing.T) {
	rw, err := RealWorldInfo("US-road")
	if err != nil {
		t.Fatal(err)
	}
	if rw.Type != "road" || rw.PaperN == 0 || rw.PaperM == 0 {
		t.Fatalf("bad metadata: %+v", rw)
	}
}

func TestFamilyStrings(t *testing.T) {
	want := map[Family]string{
		Grid2D: "2D-GRID", RGG2D: "2D-RGG", RGG3D: "3D-RGG",
		RHG: "RHG", GNM: "GNM", RMAT: "RMAT", RoadLike: "ROAD",
	}
	for f, s := range want {
		if f.String() != s {
			t.Fatalf("Family(%d).String() = %q want %q", int(f), f.String(), s)
		}
	}
}

func BenchmarkBuildGNM(b *testing.B) {
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		for i := 0; i < b.N; i++ {
			Build(c, Spec{Family: GNM, N: 1 << 12, M: 1 << 15, Seed: 1}, dsort.Options{})
		}
	})
}

func BenchmarkBuildRGG2D(b *testing.B) {
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		for i := 0; i < b.N; i++ {
			Build(c, Spec{Family: RGG2D, N: 1 << 12, M: 1 << 15, Seed: 1}, dsort.Options{})
		}
	})
}
