package gen

import (
	"math"

	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/rng"
)

// genRGG emits a random geometric graph in the unit square (dims=2) or cube
// (dims=3): N points placed uniformly at random, two points adjacent iff
// their Euclidean distance is at most a radius derived from the target
// average degree 2M/N.
//
// Generation is communication-free exactly as in KaGen: the domain is
// divided into grid cells of side ≥ radius, a point's position is a pure
// hash of (seed, cell, index-within-cell), and every PE regenerates the
// points of the cells neighboring its own. Vertex labels are assigned in
// cell order, which is what gives this family its high locality under the
// contiguous 1D edge partition.
func genRGG(c *comm.Comm, spec Spec, dims int) []graph.Edge {
	n := spec.N
	if n == 0 {
		return nil
	}
	deg := float64(2*spec.M) / float64(n)
	var radius float64
	if dims == 2 {
		radius = math.Sqrt(deg / (math.Pi * float64(n)))
	} else {
		radius = math.Cbrt(3 * deg / (4 * math.Pi * float64(n)))
	}
	if radius <= 0 || math.IsNaN(radius) {
		radius = 1
	}
	if radius > 1 {
		radius = 1
	}
	g := newRGGGeom(n, radius, dims)

	loCell, hiCell := ownedRange(c.Rank(), c.P(), g.totalCells)
	var edges []graph.Edge
	r2 := radius * radius
	work := 0
	for cell := loCell; cell < hiCell; cell++ {
		own := g.cellPoints(spec.Seed, cell)
		g.forNeighborCells(cell, func(nb uint64) {
			var other []rggPoint
			if nb == cell {
				other = own
			} else {
				other = g.cellPoints(spec.Seed, nb)
			}
			for _, a := range own {
				for _, b := range other {
					if a.id == b.id {
						continue
					}
					d := 0.0
					for k := 0; k < dims; k++ {
						dx := a.pos[k] - b.pos[k]
						d += dx * dx
					}
					work++
					if d <= r2 {
						// One direction per (owner-of-a, b) pair; the other
						// direction is emitted by b's cell owner.
						edges = append(edges, graph.NewEdge(a.id, b.id, graph.RandomWeight(spec.Seed, a.id, b.id)))
					}
				}
			}
		})
	}
	c.ChargeCompute(work)
	return edges
}

// rggPoint is a generated point with its global vertex label.
type rggPoint struct {
	id  graph.VID
	pos [3]float64
}

// rggGeom captures the cell grid of the communication-free generator.
type rggGeom struct {
	n          uint64
	dims       int
	cellsPer   uint64 // cells per dimension
	totalCells uint64
	side       float64 // cell side length
	base       uint64  // points per cell (cells < rem get one more)
	rem        uint64
}

func newRGGGeom(n uint64, radius float64, dims int) rggGeom {
	cp := uint64(1 / radius)
	if cp < 1 {
		cp = 1
	}
	// Keep at least ~2 expected points per cell so cell overhead stays sane.
	for cp > 1 {
		total := cp
		for k := 1; k < dims; k++ {
			total *= cp
		}
		if total <= n/2+1 {
			break
		}
		cp--
	}
	total := cp
	for k := 1; k < dims; k++ {
		total *= cp
	}
	return rggGeom{
		n:          n,
		dims:       dims,
		cellsPer:   cp,
		totalCells: total,
		side:       1 / float64(cp),
		base:       n / total,
		rem:        n % total,
	}
}

// cellCount returns the number of points in cell k (deterministic).
func (g rggGeom) cellCount(k uint64) uint64 {
	if k < g.rem {
		return g.base + 1
	}
	return g.base
}

// cellOffset returns the number of points in cells before k, so labels are
// contiguous in cell order.
func (g rggGeom) cellOffset(k uint64) uint64 {
	extra := k
	if extra > g.rem {
		extra = g.rem
	}
	return k*g.base + extra
}

// cellPoints regenerates the points of cell k purely from the seed.
func (g rggGeom) cellPoints(seed, k uint64) []rggPoint {
	cnt := g.cellCount(k)
	pts := make([]rggPoint, cnt)
	// Cell coordinates.
	var cc [3]uint64
	rest := k
	for d := 0; d < g.dims; d++ {
		cc[d] = rest % g.cellsPer
		rest /= g.cellsPer
	}
	off := g.cellOffset(k)
	for j := uint64(0); j < cnt; j++ {
		p := rggPoint{id: graph.VID(off + j + 1)}
		for d := 0; d < g.dims; d++ {
			h := rng.Hash64(seed, 0x4667, k, j, uint64(d))
			frac := float64(h>>11) / (1 << 53)
			p.pos[d] = (float64(cc[d]) + frac) * g.side
		}
		pts[j] = p
	}
	return pts
}

// forNeighborCells invokes f for cell k and all existing cells adjacent to
// it (8 in 2D, 26 in 3D).
func (g rggGeom) forNeighborCells(k uint64, f func(uint64)) {
	var cc [3]int64
	rest := k
	for d := 0; d < g.dims; d++ {
		cc[d] = int64(rest % g.cellsPer)
		rest /= g.cellsPer
	}
	var visit func(d int, acc uint64, mult uint64)
	deltas := []int64{-1, 0, 1}
	visit = func(d int, acc uint64, mult uint64) {
		if d == g.dims {
			f(acc)
			return
		}
		for _, dd := range deltas {
			nc := cc[d] + dd
			if nc < 0 || nc >= int64(g.cellsPer) {
				continue
			}
			visit(d+1, acc+uint64(nc)*mult, mult*g.cellsPer)
		}
	}
	visit(0, 0, 1)
}
