// Package gen generates the distributed input graphs of the paper's
// evaluation (§VII): two-dimensional grids, 2D/3D random geometric graphs,
// hyperbolic-like power-law graphs, Erdős–Renyi G(n,m) graphs, RMAT graphs
// with Graph500 parameters, and synthetic stand-ins for the real-world
// instances of Table I.
//
// Generation is deterministic and communication-free per PE (KaGen style):
// point positions, degrees and weights are pure hash functions of the seed,
// so two PEs independently derive identical values for shared objects. A
// final Finish step sorts the edges globally, removes duplicates and
// self-loops, assigns consecutive global IDs, and builds the replicated
// layout — establishing exactly the input format of §II-B (KaGen also hands
// the paper's implementation globally sorted edges).
//
// Edge weights are uniform in [1, 255) and symmetric per undirected edge,
// following the experimental setup.
package gen

import (
	"fmt"
	"sort"
	"strings"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/graph"
)

// Family enumerates the graph families.
type Family int

const (
	// Grid2D is a two-dimensional mesh (4-neighborhood).
	Grid2D Family = iota
	// RGG2D is a random geometric graph in the unit square.
	RGG2D
	// RGG3D is a random geometric graph in the unit cube.
	RGG3D
	// RHG is the hyperbolic-like family: power-law degrees (Chung–Lu
	// weights) combined with a geometric locality kernel over the vertex
	// ordering. See DESIGN.md for the substitution rationale.
	RHG
	// GNM is the Erdős–Renyi G(n,m) family.
	GNM
	// RMAT is the recursive matrix family with Graph500 probabilities.
	RMAT
	// RoadLike is a grid with random edge deletions and sparse diagonals,
	// the stand-in for road networks (US-road).
	RoadLike
)

// String returns the family name as used in the paper's figures.
func (f Family) String() string {
	switch f {
	case Grid2D:
		return "2D-GRID"
	case RGG2D:
		return "2D-RGG"
	case RGG3D:
		return "3D-RGG"
	case RHG:
		return "RHG"
	case GNM:
		return "GNM"
	case RMAT:
		return "RMAT"
	case RoadLike:
		return "ROAD"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// familyNames maps the CLI/API names to families — the single source of
// truth shared by mstgen's -family flag, the mstserve job API, and
// ParseFamily's error message.
var familyNames = []struct {
	name string
	fam  Family
}{
	{"grid2d", Grid2D},
	{"rgg2d", RGG2D},
	{"rgg3d", RGG3D},
	{"rhg", RHG},
	{"gnm", GNM},
	{"rmat", RMAT},
	{"road", RoadLike},
}

// Name returns the family's CLI/API name ("gnm", "rgg2d", ...) — the
// inverse of ParseFamily, unlike String which renders the paper's labels.
func (f Family) Name() string {
	for _, fn := range familyNames {
		if fn.fam == f {
			return fn.name
		}
	}
	return f.String()
}

// FamilyNames lists the accepted family names, sorted, as one
// comma-separated string (flag help text, error messages).
func FamilyNames() string {
	names := make([]string, 0, len(familyNames))
	for _, fn := range familyNames {
		names = append(names, fn.name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ParseFamily resolves a case-insensitive family name ("gnm", "rgg2d", ...)
// with an error listing the valid names for unknown input.
func ParseFamily(name string) (Family, error) {
	for _, fn := range familyNames {
		if strings.EqualFold(fn.name, name) {
			return fn.fam, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown graph family %q (known: %s)", name, FamilyNames())
}

// Spec describes one input instance.
type Spec struct {
	Family Family
	// N is the target number of vertices (families round to their natural
	// shapes, e.g. a grid rounds to R×C).
	N uint64
	// M is the target number of undirected edges; the directed
	// representation has about 2M entries. Ignored by Grid2D/RoadLike whose
	// M follows from the mesh shape.
	M uint64
	// Seed makes the instance reproducible.
	Seed uint64
	// PLExp is the power-law exponent for RHG (default 3.0, the paper's
	// setting).
	PLExp float64
	// LocalityMix is the fraction of RHG edges drawn from the geometric
	// locality kernel (default 0.5).
	LocalityMix float64
	// RMATKeepLocality skips the Graph500 label scrambling; the web-graph
	// stand-ins use this to retain crawl-order locality.
	RMATKeepLocality bool
}

func (s Spec) withDefaults() Spec {
	if s.PLExp == 0 {
		s.PLExp = 3.0
	}
	if s.LocalityMix == 0 {
		s.LocalityMix = 0.5
	}
	return s
}

// Label renders the spec like the paper, e.g. "GNM(2^17,2^21)".
func (s Spec) Label() string {
	return fmt.Sprintf("%s(n=%d,m=%d)", s.Family, s.N, s.M)
}

// Generate produces this PE's share of raw directed edges (unsorted; both
// directions of every undirected edge are emitted across the world).
func Generate(c *comm.Comm, spec Spec) []graph.Edge {
	spec = spec.withDefaults()
	switch spec.Family {
	case Grid2D:
		return genGrid2D(c, spec, false)
	case RoadLike:
		return genGrid2D(c, spec, true)
	case RGG2D:
		return genRGG(c, spec, 2)
	case RGG3D:
		return genRGG(c, spec, 3)
	case RHG:
		return genRHG(c, spec)
	case GNM:
		return genGNM(c, spec)
	case RMAT:
		return genRMAT(c, spec)
	}
	panic("gen: unknown family " + spec.Family.String())
}

// Finish turns raw per-PE edges into the distributed graph input format:
// globally lexicographically sorted, duplicate edges and self-loops
// removed, consecutive global IDs assigned, balanced across PEs, and the
// replicated layout built.
func Finish(c *comm.Comm, raw []graph.Edge, sortOpt dsort.Options) ([]graph.Edge, *graph.Layout) {
	// Drop self-loops locally first.
	kept := raw[:0]
	for _, e := range raw {
		if e.U != e.V {
			kept = append(kept, e)
		}
	}
	sorted := dsort.Sort(c, kept, dsort.ByKey(graph.LessLex, graph.KeyLex), sortOpt)

	// Remove duplicates: runs of equal (U,V) are consecutive after the
	// lexicographic sort and the lightest copy leads each run.
	dedup := sorted[:0]
	for i, e := range sorted {
		if i > 0 && e.U == sorted[i-1].U && e.V == sorted[i-1].V {
			continue
		}
		dedup = append(dedup, e)
	}
	c.ChargeCompute(len(sorted))

	// Cross-boundary duplicates: drop our head run if the previous
	// non-empty PE ends with the same (U, V).
	type key struct {
		Has  bool
		U, V graph.VID
	}
	mine := key{}
	if len(dedup) > 0 {
		last := dedup[len(dedup)-1]
		mine = key{Has: true, U: last.U, V: last.V}
	}
	lasts := comm.Allgather(c, mine)
	var prev key
	for i := 0; i < c.Rank(); i++ {
		if lasts[i].Has {
			prev = lasts[i]
		}
	}
	if prev.Has {
		drop := 0
		for drop < len(dedup) && dedup[drop].U == prev.U && dedup[drop].V == prev.V {
			drop++
		}
		dedup = dedup[drop:]
	}

	// Assign consecutive global IDs in sort order.
	offset := comm.ExScan(c, len(dedup), 0, func(a, b int) int { return a + b })
	for i := range dedup {
		dedup[i].ID = uint64(offset + i)
	}
	rebalanced := dsort.Rebalance(c, dedup)
	// The result outlives every later dsort call of the job (the rounds
	// re-sort the working set repeatedly), so it must own its memory —
	// dsort results are arena-backed and valid only until the next sort.
	balanced := make([]graph.Edge, len(rebalanced))
	copy(balanced, rebalanced)
	layout := graph.BuildLayout(c, balanced)
	return balanced, layout
}

// Build generates and finishes an instance in one call.
func Build(c *comm.Comm, spec Spec, sortOpt dsort.Options) ([]graph.Edge, *graph.Layout) {
	return Finish(c, Generate(c, spec), sortOpt)
}

// ownedRange splits 0..total-1 contiguously among PEs; returns this PE's
// half-open range.
func ownedRange(rank, p int, total uint64) (uint64, uint64) {
	lo := uint64(rank) * total / uint64(p)
	hi := uint64(rank+1) * total / uint64(p)
	return lo, hi
}

// emitBoth appends both directions of the undirected edge {u, v} with its
// deterministic weight.
func emitBoth(edges []graph.Edge, seed uint64, u, v graph.VID) []graph.Edge {
	w := graph.RandomWeight(seed, u, v)
	return append(edges, graph.NewEdge(u, v, w), graph.NewEdge(v, u, w))
}
