package gen

import (
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/rng"
)

// Graph500 RMAT quadrant probabilities (a, b, c, d).
const (
	rmatA = 0.57
	rmatB = 0.19
	rmatC = 0.19
	// rmatD = 0.05 (implicit remainder)
)

// genRMAT emits an RMAT graph with the Graph500 default probabilities: each
// edge recursively descends the adjacency matrix, picking a quadrant per
// level. Vertex labels are scrambled with a deterministic permutation
// (cycle-walking Feistel), as Graph500 prescribes, which destroys locality —
// giving the family its "almost exclusively cut-edges" character (§VII).
// Spec.RMATKeepLocality skips the scrambling; the web-graph stand-ins use
// this to retain the locality real crawl orderings have.
func genRMAT(c *comm.Comm, spec Spec) []graph.Edge {
	n := spec.N
	if n < 2 {
		return nil
	}
	levels := 0
	for v := uint64(1); v < n; v <<= 1 {
		levels++
	}
	lo, hi := ownedRange(c.Rank(), c.P(), spec.M)
	edges := make([]graph.Edge, 0, 2*(hi-lo))
	for e := lo; e < hi; e++ {
		r := rng.New(rng.Hash64(spec.Seed, 0x52A7, e))
		var u, v uint64
		for l := 0; l < levels; l++ {
			f := r.Float64()
			switch {
			case f < rmatA:
				// top-left: no bits set
			case f < rmatA+rmatB:
				v |= 1 << l
			case f < rmatA+rmatB+rmatC:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue // rejected sample; Finish tolerates the shortfall
		}
		if !spec.RMATKeepLocality {
			u = scramble(u, spec.Seed, levels, n)
			v = scramble(v, spec.Seed, levels, n)
			if u == v {
				continue
			}
		}
		edges = emitBoth(edges, spec.Seed, graph.VID(u+1), graph.VID(v+1))
	}
	c.ChargeCompute(int(hi-lo) * levels)
	return edges
}

// scramble applies a deterministic pseudo-random permutation of [0, n): a
// balanced 4-round Feistel network over the smallest even-bit domain
// covering n, with cycle-walking for out-of-range values. Being a
// bijection, it relabels vertices without collisions — the Graph500 label
// scrambling that destroys the locality of the raw RMAT construction.
func scramble(x, seed uint64, bits int, n uint64) uint64 {
	ebits := bits
	if ebits%2 == 1 {
		ebits++
	}
	if ebits < 2 {
		return x
	}
	half := ebits / 2
	mask := (uint64(1) << half) - 1
	for {
		l := x & mask
		r := x >> half
		for round := uint64(0); round < 4; round++ {
			l, r = r, l^(rng.Hash64(seed, 0xFE15, round, r)&mask)
		}
		x = (r << half) | l
		if x < n {
			return x
		}
	}
}
