package gen

import (
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/rng"
)

// genGNM emits an Erdős–Renyi G(n,m) graph: M undirected edges sampled
// uniformly with replacement (collisions are removed in Finish, so the
// realized edge count is marginally below M for dense settings, as with any
// sampling-based G(n,m) generator). Edge e of the global edge index space
// is a pure function of (seed, e), so the instance is independent of the
// number of PEs generating it.
func genGNM(c *comm.Comm, spec Spec) []graph.Edge {
	n := spec.N
	if n < 2 {
		return nil
	}
	lo, hi := ownedRange(c.Rank(), c.P(), spec.M)
	edges := make([]graph.Edge, 0, 2*(hi-lo))
	for e := lo; e < hi; e++ {
		r := rng.New(rng.Hash64(spec.Seed, 0x6E6D, e))
		u := graph.VID(r.Uint64n(n) + 1)
		v := graph.VID(r.Uint64n(n) + 1)
		if u == v {
			continue
		}
		edges = emitBoth(edges, spec.Seed, u, v)
	}
	c.ChargeCompute(int(hi - lo))
	return edges
}
