package gen

import (
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/rng"
)

// gridShape rounds N to an R×C mesh with R ≈ C ≈ √N.
func gridShape(n uint64) (rows, cols uint64) {
	if n == 0 {
		return 0, 0
	}
	r := uint64(1)
	for (r+1)*(r+1) <= n {
		r++
	}
	c := (n + r - 1) / r
	return r, c
}

// genGrid2D emits a 2D mesh with the 4-neighborhood. Vertex (r,c) has label
// r*cols+c+1, so striping rows over PEs yields the high-locality numbering
// the paper's 2D-GRID family has. With road=true it becomes the road-network
// stand-in: about 10% of mesh edges are deleted and sparse diagonals are
// added, giving the low, near-constant degree and long paths typical of
// road graphs.
func genGrid2D(c *comm.Comm, spec Spec, road bool) []graph.Edge {
	rows, cols := gridShape(spec.N)
	if rows == 0 {
		return nil
	}
	loRow, hiRow := ownedRange(c.Rank(), c.P(), rows)
	id := func(r, col uint64) graph.VID { return graph.VID(r*cols + col + 1) }
	var edges []graph.Edge
	for r := loRow; r < hiRow; r++ {
		for col := uint64(0); col < cols; col++ {
			u := id(r, col)
			if col+1 < cols {
				v := id(r, col+1)
				if !road || !roadDrop(spec.Seed, u, v) {
					edges = emitBoth(edges, spec.Seed, u, v)
				}
			}
			if r+1 < rows {
				v := id(r+1, col)
				if !road || !roadDrop(spec.Seed, u, v) {
					edges = emitBoth(edges, spec.Seed, u, v)
				}
			}
			if road && col+1 < cols && r+1 < rows {
				v := id(r+1, col+1)
				if rng.Hash64(spec.Seed, 0xD1A6, uint64(u), uint64(v))%100 < 5 {
					edges = emitBoth(edges, spec.Seed, u, v)
				}
			}
		}
	}
	c.ChargeCompute(int(hiRow-loRow) * int(cols) * 3)
	return edges
}

// roadDrop deterministically deletes about 10% of the mesh edges for the
// road-network stand-in.
func roadDrop(seed uint64, u, v graph.VID) bool {
	return rng.Hash64(seed, 0x0A0D, uint64(u), uint64(v))%100 < 10
}
