package gen

import (
	"math"

	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/rng"
)

// genRHG emits the hyperbolic-like family: a Chung–Lu power-law graph with
// a geometric locality kernel. Vertex u carries weight w_u ∝ u^(−1/(γ−1))
// (γ = spec.PLExp, default 3.0), so low labels are hubs. Each vertex emits
// w_u/2 undirected edges; a LocalityMix fraction picks the partner at a
// log-uniform label distance (locality, mimicking the angular adjacency of
// true RHGs), the rest pick a weight-biased global partner (power-law
// degrees, mimicking the radial hubs).
//
// This substitutes for KaGen's true hyperbolic generator: it reproduces the
// two properties the evaluation depends on — skewed power-law degrees and
// locality "somewhere in between" the grid and GNM families (§VII) — without
// the hyperbolic metric machinery. Documented in DESIGN.md.
func genRHG(c *comm.Comm, spec Spec) []graph.Edge {
	n := spec.N
	if n < 2 {
		return nil
	}
	alpha := 1 / (spec.PLExp - 1) // γ=3 → α=0.5
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.5
	}
	// Normalize weights so Σ w_u ≈ 2M: Σ u^-α ≈ (n^(1-α) - 1)/(1-α) + 1.
	s := (math.Pow(float64(n), 1-alpha)-1)/(1-alpha) + 1
	scale := float64(2*spec.M) / s

	lo, hi := ownedRange(c.Rank(), c.P(), n)
	var edges []graph.Edge
	work := 0
	for u0 := lo; u0 < hi; u0++ {
		u := graph.VID(u0 + 1)
		r := rng.New(rng.Hash64(spec.Seed, 0x2467, uint64(u)))
		w := scale * math.Pow(float64(u), -alpha)
		k := int(w / 2)
		if r.Float64() < w/2-float64(k) {
			k++ // probabilistic rounding keeps E[degree] on target
		}
		for i := 0; i < k; i++ {
			var v graph.VID
			if r.Float64() < spec.LocalityMix {
				// Log-uniform label distance in [1, n/2].
				maxDist := float64(n) / 2
				dist := uint64(math.Exp(r.Float64() * math.Log(maxDist)))
				if dist < 1 {
					dist = 1
				}
				if r.Next()&1 == 0 {
					v = graph.VID((u0+dist)%n + 1)
				} else {
					v = graph.VID((u0+n-dist%n)%n + 1)
				}
			} else {
				// Weight-biased global partner: P(v ≤ x) = (x/n)^(1-α).
				x := math.Pow(r.Float64(), 1/(1-alpha)) * float64(n)
				v = graph.VID(uint64(x) + 1)
				if uint64(v) > n {
					v = graph.VID(n)
				}
			}
			if v == u {
				continue
			}
			edges = emitBoth(edges, spec.Seed, u, v)
			work++
		}
	}
	c.ChargeCompute(work * 4)
	return edges
}
