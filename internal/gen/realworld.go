package gen

import (
	"fmt"
	"sort"
	"strings"
)

// RealWorldInstance describes one of the paper's Table I graphs together
// with its synthetic stand-in. The paper's strong-scaling experiments use
// six real-world graphs that are not redistributable here; each is replaced
// by a generator configuration matching its type (degree skew, locality,
// density) at a configurable scale — the substitution preserves the
// strong-scaling behaviour, which is driven by graph type rather than by
// the exact edge set (see DESIGN.md).
type RealWorldInstance struct {
	Name   string
	PaperN uint64 // vertices in the original
	PaperM uint64 // symmetric directed edges in the original
	Type   string // social / web / road
	spec   func(n, m, seed uint64) Spec
}

// realWorld lists Table I with stand-in constructors.
var realWorld = []RealWorldInstance{
	{
		Name: "friendster", PaperN: 68_300_000, PaperM: 3_600_000_000, Type: "social",
		spec: func(n, m, seed uint64) Spec {
			return Spec{Family: RMAT, N: n, M: m, Seed: seed}
		},
	},
	{
		Name: "twitter", PaperN: 41_700_000, PaperM: 2_400_000_000, Type: "social",
		spec: func(n, m, seed uint64) Spec {
			return Spec{Family: RMAT, N: n, M: m, Seed: seed + 1}
		},
	},
	{
		Name: "uk-2007", PaperN: 105_900_000, PaperM: 6_600_000_000, Type: "web",
		spec: func(n, m, seed uint64) Spec {
			return Spec{Family: RMAT, N: n, M: m, Seed: seed + 2, RMATKeepLocality: true}
		},
	},
	{
		Name: "it-2004", PaperN: 41_300_000, PaperM: 2_100_000_000, Type: "web",
		spec: func(n, m, seed uint64) Spec {
			return Spec{Family: RMAT, N: n, M: m, Seed: seed + 3, RMATKeepLocality: true}
		},
	},
	{
		Name: "wdc-14", PaperN: 1_700_000_000, PaperM: 123_900_000_000, Type: "web",
		spec: func(n, m, seed uint64) Spec {
			return Spec{Family: RMAT, N: n, M: m, Seed: seed + 4, RMATKeepLocality: true}
		},
	},
	{
		Name: "US-road", PaperN: 23_900_000, PaperM: 57_700_000, Type: "road",
		spec: func(n, m, seed uint64) Spec {
			return Spec{Family: RoadLike, N: n, M: m, Seed: seed + 5}
		},
	},
}

// RealWorldNames lists the stand-in instance names in Table I order.
func RealWorldNames() []string {
	names := make([]string, len(realWorld))
	for i, rw := range realWorld {
		names[i] = rw.Name
	}
	return names
}

// RealWorldInfo returns the Table I metadata for an instance name. The
// lookup is case-insensitive ("us-road" finds "US-road").
func RealWorldInfo(name string) (RealWorldInstance, error) {
	for _, rw := range realWorld {
		if strings.EqualFold(rw.Name, name) {
			return rw, nil
		}
	}
	known := RealWorldNames()
	sort.Strings(known)
	return RealWorldInstance{}, fmt.Errorf("gen: unknown real-world instance %q (known: %s)", name, strings.Join(known, ", "))
}

// RealWorldSpec builds the stand-in Spec for an instance, scaled down by
// the given divisor (scale 1 reproduces the paper's n and m — far beyond a
// single machine; benchmarks use scales around 2^10..2^14). The undirected
// target M is half the paper's symmetric directed count.
func RealWorldSpec(name string, scale uint64, seed uint64) (Spec, error) {
	rw, err := RealWorldInfo(name)
	if err != nil {
		return Spec{}, err
	}
	if scale == 0 {
		scale = 1
	}
	n := rw.PaperN / scale
	m := rw.PaperM / 2 / scale
	if n < 16 {
		n = 16
	}
	if m < n {
		m = n
	}
	return rw.spec(n, m, seed), nil
}
