package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide in %d of 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Next()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produces a degenerate stream: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a, b := root.Split(1), root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children coincide in %d of 100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split(3)
	b := New(7).Split(3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("equal splits diverged")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets.
	r := New(99)
	const buckets, draws = 16, 160000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Uint64n(buckets)]++
	}
	expect := float64(draws) / buckets
	for i, c := range count {
		if math.Abs(float64(c)-expect) > 0.08*expect {
			t.Fatalf("bucket %d has %d draws, expected about %.0f", i, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 is not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(1, 2, 4) {
		t.Fatal("Hash64 collision on trivially different input")
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 should be order sensitive")
	}
}

func TestEdgeWeightSymmetric(t *testing.T) {
	f := func(seed, u, v uint64) bool {
		return EdgeWeight(seed, u, v) == EdgeWeight(seed, v, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeWeightRange(t *testing.T) {
	f := func(seed, u, v uint64) bool {
		w := EdgeWeight(seed, u, v)
		return w >= 1 && w < 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeWeightDistribution(t *testing.T) {
	var count [256]int
	for i := uint64(0); i < 100000; i++ {
		count[EdgeWeight(1, i, i+1)]++
	}
	if count[0] != 0 || count[255] != 0 {
		t.Fatal("weights outside [1,255)")
	}
	expect := 100000.0 / 254
	for w := 1; w < 255; w++ {
		if math.Abs(float64(count[w])-expect) > 0.25*expect+20 {
			t.Fatalf("weight %d occurs %d times, expected about %.0f", w, count[w], expect)
		}
	}
}

func BenchmarkNext(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Next()
	}
	_ = sink
}

func BenchmarkEdgeWeight(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += EdgeWeight(1, uint64(i), uint64(i+1))
	}
	_ = sink
}
