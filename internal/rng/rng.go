// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator, the graph generators and the samplers.
//
// Two building blocks are exposed:
//
//   - RNG: a xoshiro256** generator seeded through SplitMix64, suitable as a
//     general-purpose stream. It is deliberately not safe for concurrent use;
//     every PE/worker derives its own stream with Split or New.
//   - Stateless hashing (Hash64, EdgeWeight): pure functions of their inputs,
//     used whenever two PEs must agree on a random value without
//     communicating (e.g. the weight of edge {u,v} seen from both sides).
//
// Determinism across runs and across the number of PEs is a design
// requirement: experiments must be reproducible and correctness tests compare
// outputs across different machine widths.
package rng

import "math/bits"

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is used for seeding and for stateless hashing because every
// output bit depends on every input bit (full avalanche).
func splitMix64(x uint64) (next uint64, out uint64) {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return x, z ^ (z >> 31)
}

// Hash64 mixes an arbitrary number of 64-bit words into a single
// well-distributed 64-bit value. It is pure: equal inputs give equal outputs
// on every PE, which is what makes communication-free random edge weights
// possible.
func Hash64(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		_, h = splitMix64(h)
	}
	return h
}

// RNG is a xoshiro256** pseudo-random generator. The zero value is invalid;
// construct with New or Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64, as
// recommended by the xoshiro authors.
func New(seed uint64) *RNG {
	var r RNG
	x := seed
	for i := range r.s {
		x, r.s[i] = splitMix64(x)
	}
	// xoshiro must not be seeded with all zeros.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Split derives an independent child generator identified by id. Children
// with distinct ids produce streams that are independent for all practical
// purposes, so each PE or worker thread can own one.
func (r *RNG) Split(id uint64) *RNG {
	return New(Hash64(r.s[0], r.s[2], id))
}

// Next returns the next 64 uniformly distributed bits.
func (r *RNG) Next() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if
// n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire's method with rejection to remove bias.
	for {
		v := r.Next()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of 0..n-1 (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// EdgeWeight returns the deterministic weight of the undirected edge {u,v}
// under the given seed, uniformly distributed in [1, 255) as in the paper's
// experimental setup (following Baer et al.). Both orientations of the edge
// map to the same weight because the endpoints are canonicalized first.
func EdgeWeight(seed, u, v uint64) uint32 {
	if u > v {
		u, v = v, u
	}
	return uint32(Hash64(seed, u, v)%254) + 1
}
