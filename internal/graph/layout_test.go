package graph

import (
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/rng"
)

// makeGlobalEdges builds a sorted symmetric edge sequence for a small
// random graph on n vertices (labels 1..n).
func makeGlobalEdges(n, m int, seed uint64) []Edge {
	r := rng.New(seed)
	seen := map[uint64]bool{}
	var edges []Edge
	for len(seen) < m {
		u := VID(r.Intn(n) + 1)
		v := VID(r.Intn(n) + 1)
		if u == v {
			continue
		}
		tb := MakeTB(u, v)
		if seen[tb] {
			continue
		}
		seen[tb] = true
		w := RandomWeight(seed, u, v)
		edges = append(edges, NewEdge(u, v, w), NewEdge(v, u, w))
	}
	sortEdges(edges)
	for i := range edges {
		edges[i].ID = uint64(i)
	}
	return edges
}

func sortEdges(edges []Edge) {
	// insertion of sort.Slice here keeps the test independent of dsort
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && LessLex(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

// partitions splits the edges into p chunks according to a cut pattern:
// 0 = balanced, 1 = skewed to front, 2 = with empty PEs in the middle.
func partition(edges []Edge, p, pattern int) [][]Edge {
	out := make([][]Edge, p)
	m := len(edges)
	switch pattern {
	case 0:
		chunk := (m + p - 1) / p
		for i := 0; i < p; i++ {
			lo, hi := i*chunk, (i+1)*chunk
			if lo > m {
				lo = m
			}
			if hi > m {
				hi = m
			}
			out[i] = edges[lo:hi]
		}
	case 1: // first PE gets half, rest share
		if p == 1 {
			out[0] = edges
			break
		}
		half := m / 2
		out[0] = edges[:half]
		rest := edges[half:]
		chunk := (len(rest) + p - 2) / maxi(p-1, 1)
		for i := 1; i < p; i++ {
			lo, hi := (i-1)*chunk, i*chunk
			if lo > len(rest) {
				lo = len(rest)
			}
			if hi > len(rest) {
				hi = len(rest)
			}
			out[i] = rest[lo:hi]
		}
	case 2: // even PEs empty
		nonEmpty := (p + 1) / 2
		chunk := (m + nonEmpty - 1) / nonEmpty
		k := 0
		for i := 0; i < p; i++ {
			if i%2 == 0 && i != 0 {
				continue
			}
			lo, hi := k*chunk, (k+1)*chunk
			if lo > m {
				lo = m
			}
			if hi > m {
				hi = m
			}
			out[i] = edges[lo:hi]
			k++
		}
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bruteHome returns the index of the chunk where v's source range starts.
func bruteHome(chunks [][]Edge, v VID) int {
	for i, ch := range chunks {
		for _, e := range ch {
			if e.U == v {
				return i
			}
		}
	}
	return -1
}

func bruteShared(chunks [][]Edge, v VID) bool {
	n := 0
	for _, ch := range chunks {
		for _, e := range ch {
			if e.U == v {
				n++
				break
			}
		}
	}
	return n > 1
}

func bruteOwner(chunks [][]Edge, u, v VID) int {
	for i, ch := range chunks {
		for _, e := range ch {
			if e.U == u && e.V == v {
				return i
			}
		}
	}
	return -1
}

func TestLayoutAgainstBruteForce(t *testing.T) {
	edges := makeGlobalEdges(30, 60, 17)
	for _, p := range []int{1, 2, 3, 5, 8} {
		for pattern := 0; pattern <= 2; pattern++ {
			chunks := partition(edges, p, pattern)
			w := comm.NewWorld(p)
			w.Run(func(c *comm.Comm) {
				l := BuildLayout(c, chunks[c.Rank()])
				if l.TotalEdges() != len(edges) {
					t.Errorf("p=%d pat=%d: TotalEdges=%d want %d", p, pattern, l.TotalEdges(), len(edges))
					return
				}
				if c.Rank() != 0 {
					return // checks below are deterministic and replicated
				}
				for v := VID(1); v <= 30; v++ {
					wantHome := bruteHome(chunks, v)
					if wantHome < 0 {
						continue // vertex has no edges
					}
					if got := l.HomePE(v); got != wantHome {
						t.Errorf("p=%d pat=%d: HomePE(%d)=%d want %d", p, pattern, v, got, wantHome)
					}
					if got := l.IsShared(v); got != bruteShared(chunks, v) {
						t.Errorf("p=%d pat=%d: IsShared(%d)=%v want %v", p, pattern, v, got, !got)
					}
				}
				for _, e := range edges {
					want := bruteOwner(chunks, e.U, e.V)
					if got := l.OwnerOfEdge(e.U, e.V); got != want {
						t.Errorf("p=%d pat=%d: OwnerOfEdge(%d,%d)=%d want %d", p, pattern, e.U, e.V, got, want)
					}
				}
			})
		}
	}
}

func TestSharedSpanCoversAllHolders(t *testing.T) {
	edges := makeGlobalEdges(10, 25, 3)
	p := 6
	chunks := partition(edges, p, 0)
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		l := BuildLayout(c, chunks[c.Rank()])
		if c.Rank() != 0 {
			return
		}
		for v := VID(1); v <= 10; v++ {
			if bruteHome(chunks, v) < 0 {
				continue
			}
			first, last := l.SharedSpan(v)
			for i := 0; i < p; i++ {
				holds := false
				for _, e := range chunks[i] {
					if e.U == v {
						holds = true
						break
					}
				}
				inSpan := i >= first && i <= last && l.Counts[i] > 0
				if holds != inSpan {
					t.Errorf("v=%d PE=%d: holds=%v but span=[%d,%d]", v, i, holds, first, last)
				}
			}
		}
	})
}

func TestIsSharedOn(t *testing.T) {
	// Construct a vertex spanning PEs 1..2 explicitly.
	all := []Edge{
		{U: 1, V: 2, W: 1, TB: MakeTB(1, 2)},
		{U: 2, V: 1, W: 1, TB: MakeTB(1, 2)},
		{U: 2, V: 3, W: 2, TB: MakeTB(2, 3)},
		{U: 3, V: 2, W: 2, TB: MakeTB(2, 3)},
	}
	chunks := [][]Edge{all[:1], all[1:2], all[2:]}
	w := comm.NewWorld(3)
	w.Run(func(c *comm.Comm) {
		l := BuildLayout(c, chunks[c.Rank()])
		if c.Rank() == 0 {
			if !l.IsShared(2) {
				t.Error("vertex 2 spans PEs 1 and 2, should be shared")
			}
			if l.IsShared(1) || l.IsShared(3) {
				t.Error("vertices 1 and 3 are not shared")
			}
			if !l.IsSharedOn(2, 1) || !l.IsSharedOn(2, 2) {
				t.Error("IsSharedOn should be true on both holders")
			}
			if l.IsSharedOn(2, 0) {
				t.Error("IsSharedOn must be false on a PE outside the span")
			}
		}
	})
}

func TestGlobalVertexCount(t *testing.T) {
	edges := makeGlobalEdges(25, 50, 9)
	distinct := map[VID]bool{}
	for _, e := range edges {
		distinct[e.U] = true
	}
	for _, p := range []int{1, 2, 4, 7} {
		for pattern := 0; pattern <= 2; pattern++ {
			chunks := partition(edges, p, pattern)
			w := comm.NewWorld(p)
			w.Run(func(c *comm.Comm) {
				l := BuildLayout(c, chunks[c.Rank()])
				got := GlobalVertexCount(c, l, chunks[c.Rank()])
				if got != len(distinct) {
					t.Errorf("p=%d pat=%d rank=%d: GlobalVertexCount=%d want %d", p, pattern, c.Rank(), got, len(distinct))
				}
			})
		}
	}
}

func TestLayoutAllEmpty(t *testing.T) {
	w := comm.NewWorld(3)
	w.Run(func(c *comm.Comm) {
		l := BuildLayout(c, nil)
		if l.TotalEdges() != 0 {
			t.Errorf("empty layout has %d edges", l.TotalEdges())
		}
	})
}
