package graph

import (
	"testing"

	"kamsta/internal/comm"
)

// TestOwnerOfReverse checks the exact-copy reverse lookup used by the
// label exchange, including parallel edges between the same endpoints.
func TestOwnerOfReverse(t *testing.T) {
	// Build edges with two parallel weight classes between 1 and 2... a
	// multigraph needs distinct TBs, which MakeTB cannot give for one
	// pair; emulate parallels with distinct weights instead (distinct
	// LessLex positions).
	mk := func(u, v VID, w Weight, id uint64) Edge {
		e := NewEdge(u, v, w)
		e.ID = id
		return e
	}
	all := []Edge{
		mk(1, 2, 3, 0), mk(1, 2, 9, 1), mk(1, 3, 5, 2),
		mk(2, 1, 3, 3), mk(2, 1, 9, 4),
		mk(3, 1, 5, 5),
	}
	chunks := [][]Edge{all[:2], all[2:4], all[4:]}
	w := comm.NewWorld(3)
	w.Run(func(c *comm.Comm) {
		l := BuildLayout(c, chunks[c.Rank()])
		if c.Rank() != 0 {
			return
		}
		cases := []struct {
			edge Edge
			want int
		}{
			{all[0], 1}, // reverse of (1,2,3) is (2,1,3) on PE 1
			{all[1], 2}, // reverse of (1,2,9) is (2,1,9) on PE 2
			{all[3], 0}, // reverse of (2,1,3) is (1,2,3) on PE 0
			{all[2], 2}, // reverse of (1,3,5) is (3,1,5) on PE 2
		}
		for _, tc := range cases {
			if got := l.OwnerOfReverse(tc.edge); got != tc.want {
				t.Errorf("OwnerOfReverse(%v)=%d want %d", tc.edge, got, tc.want)
			}
		}
	})
}

// TestLayoutSinglePE pins the trivial world.
func TestLayoutSinglePE(t *testing.T) {
	edges := []Edge{NewEdge(1, 2, 1), NewEdge(2, 1, 1)}
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		l := BuildLayout(c, edges)
		if l.HomePE(1) != 0 || l.HomePE(2) != 0 {
			t.Error("single PE owns everything")
		}
		if l.IsShared(1) || l.IsShared(2) {
			t.Error("nothing is shared on one PE")
		}
		if GlobalVertexCount(c, l, edges) != 2 {
			t.Error("vertex count wrong")
		}
	})
}

// TestHighDegreeVertexSpansManyPEs: a star center split across 4 PEs must
// report the full shared span — the case the paper's 1D edge partition is
// designed to load-balance.
func TestHighDegreeVertexSpansManyPEs(t *testing.T) {
	var all []Edge
	center := VID(1)
	for leaf := VID(2); leaf <= 17; leaf++ {
		all = append(all, NewEdge(center, leaf, RandomWeight(1, center, leaf)))
	}
	// center's 16 edges split over 4 PEs; leaf back-edges on a 5th.
	var back []Edge
	for leaf := VID(2); leaf <= 17; leaf++ {
		back = append(back, NewEdge(leaf, center, RandomWeight(1, center, leaf)))
	}
	chunks := [][]Edge{all[:4], all[4:8], all[8:12], all[12:], back}
	w := comm.NewWorld(5)
	w.Run(func(c *comm.Comm) {
		l := BuildLayout(c, chunks[c.Rank()])
		if c.Rank() != 0 {
			return
		}
		first, last := l.SharedSpan(center)
		if first != 0 || last != 3 {
			t.Errorf("star center span [%d,%d], want [0,3]", first, last)
		}
		if !l.IsShared(center) {
			t.Error("star center must be shared")
		}
		for _, r := range []int{0, 1, 2, 3} {
			if !l.IsSharedOn(center, r) {
				t.Errorf("center should be shared on PE %d", r)
			}
		}
		if l.IsSharedOn(center, 4) {
			t.Error("PE 4 holds only back edges; center is not its source")
		}
	})
}
