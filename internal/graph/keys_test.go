package graph

import (
	"testing"

	"kamsta/internal/rng"
)

// TestRadixKeysOrderConsistent pins the contract the distributed sorter
// relies on: KeyLex(a) < KeyLex(b) implies LessLex(a, b), and likewise for
// KeyWeight/LessWeight, over random edges within the 2^32 label invariant.
func TestRadixKeysOrderConsistent(t *testing.T) {
	r := rng.New(123)
	edges := make([]Edge, 4000)
	for i := range edges {
		u := VID(1 + r.Intn(1<<20))
		v := VID(1 + r.Intn(1<<20))
		e := NewEdge(u, v, Weight(1+r.Intn(254)))
		e.ID = uint64(r.Intn(1 << 16))
		if i%5 == 0 { // exercise relabeled endpoints too
			e.U = VID(1 + r.Intn(1<<10))
			e.V = VID(1 + r.Intn(1<<10))
		}
		edges[i] = e
	}
	for i := 0; i < len(edges)-1; i++ {
		a, b := edges[i], edges[i+1]
		if KeyLex(a) < KeyLex(b) && !LessLex(a, b) {
			t.Fatalf("KeyLex order-inconsistent: %+v vs %+v", a, b)
		}
		if KeyLex(b) < KeyLex(a) && !LessLex(b, a) {
			t.Fatalf("KeyLex order-inconsistent: %+v vs %+v", b, a)
		}
		if KeyWeight(a) < KeyWeight(b) && !LessWeight(a, b) {
			t.Fatalf("KeyWeight order-inconsistent: %+v vs %+v", a, b)
		}
		if KeyWeight(b) < KeyWeight(a) && !LessWeight(b, a) {
			t.Fatalf("KeyWeight order-inconsistent: %+v vs %+v", b, a)
		}
	}
}

// TestKeyLexMatchesEndpointOrder pins the exact packing: keys order first
// by U, then V.
func TestKeyLexMatchesEndpointOrder(t *testing.T) {
	a := Edge{U: 2, V: 1<<32 - 1}
	b := Edge{U: 3, V: 1}
	if KeyLex(a) >= KeyLex(b) {
		t.Fatal("U must dominate V in KeyLex")
	}
	c := Edge{U: 2, V: 5}
	if KeyLex(a) <= KeyLex(c) {
		t.Fatal("V must order within equal U")
	}
}
