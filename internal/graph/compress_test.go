package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"kamsta/internal/rng"
)

func makeSortedEdges(n int, seed uint64) []Edge {
	r := rng.New(seed)
	edges := make([]Edge, n)
	for i := range edges {
		u := VID(r.Intn(1000) + 1)
		v := VID(r.Intn(1000) + 1)
		if v == u {
			v = u + 1
		}
		edges[i] = NewEdge(u, v, RandomWeight(seed, u, v))
	}
	sort.Slice(edges, func(i, j int) bool { return LessLex(edges[i], edges[j]) })
	for i := range edges {
		edges[i].ID = 100 + uint64(i)
	}
	return edges
}

func TestRoundTripDecodeAll(t *testing.T) {
	for _, n := range []int{0, 1, 5, blockSize - 1, blockSize, blockSize + 1, 4*blockSize + 7} {
		edges := makeSortedEdges(n, uint64(n))
		c := CompressEdges(edges, 100)
		got := c.DecodeAll()
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d edges", n, len(got))
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("n=%d: edge %d: got %+v want %+v", n, i, got[i], edges[i])
			}
		}
	}
}

func TestRandomAccessAt(t *testing.T) {
	edges := makeSortedEdges(3*blockSize+17, 9)
	c := CompressEdges(edges, 100)
	for _, i := range []int{0, 1, blockSize - 1, blockSize, 2*blockSize + 5, len(edges) - 1} {
		if got := c.At(i); got != edges[i] {
			t.Fatalf("At(%d): got %+v want %+v", i, got, edges[i])
		}
	}
}

func TestByID(t *testing.T) {
	edges := makeSortedEdges(50, 3)
	c := CompressEdges(edges, 100)
	for i, e := range edges {
		if got := c.ByID(100 + uint64(i)); got != e {
			t.Fatalf("ByID(%d) mismatch", 100+i)
		}
	}
}

func TestByIDPanicsOutOfRange(t *testing.T) {
	c := CompressEdges(makeSortedEdges(10, 1), 100)
	for _, id := range []uint64{99, 110} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ByID(%d) should panic", id)
				}
			}()
			c.ByID(id)
		}()
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	c := CompressEdges(makeSortedEdges(10, 1), 100)
	defer func() {
		if recover() == nil {
			t.Error("At(-1) should panic")
		}
	}()
	c.At(-1)
}

func TestEncodePanicsOnUnsorted(t *testing.T) {
	edges := []Edge{NewEdge(5, 1, 2), NewEdge(1, 2, 3)}
	edges[0].ID, edges[1].ID = 0, 1
	defer func() {
		if recover() == nil {
			t.Error("Encode should reject unsorted input")
		}
	}()
	CompressEdges(edges, 0)
}

func TestEncodePanicsOnNonConsecutiveIDs(t *testing.T) {
	edges := []Edge{NewEdge(1, 2, 3), NewEdge(1, 3, 4)}
	edges[0].ID, edges[1].ID = 0, 5
	defer func() {
		if recover() == nil {
			t.Error("Encode should reject non-consecutive IDs")
		}
	}()
	CompressEdges(edges, 0)
}

func TestCompressionSavesSpace(t *testing.T) {
	// Locality-friendly input (small deltas) should compress far below the
	// 40-byte in-memory representation.
	n := 10000
	edges := make([]Edge, n)
	for i := range edges {
		u := VID(i/4 + 1)
		v := u + VID(i%4) + 1
		edges[i] = NewEdge(u, v, Weight(i%254+1))
		edges[i].ID = uint64(i)
	}
	c := CompressEdges(edges, 0)
	raw := n * 40
	if c.SizeBytes()*4 > raw {
		t.Fatalf("compressed %d bytes vs raw %d: expected at least 4x saving", c.SizeBytes(), raw)
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLenAndFirstID(t *testing.T) {
	c := CompressEdges(makeSortedEdges(33, 2), 100)
	if c.Len() != 33 || c.FirstID() != 100 {
		t.Fatalf("Len=%d FirstID=%d", c.Len(), c.FirstID())
	}
}

func BenchmarkCompressEdges(b *testing.B) {
	edges := makeSortedEdges(100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompressEdges(edges, 100)
	}
}

func BenchmarkDecodeAll(b *testing.B) {
	c := CompressEdges(makeSortedEdges(100000, 4), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeAll()
	}
}

func BenchmarkRandomAccess(b *testing.B) {
	edges := makeSortedEdges(100000, 4)
	c := CompressEdges(edges, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(i % len(edges))
	}
}
