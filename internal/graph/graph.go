// Package graph defines the edge representation and the distributed graph
// data structure of the paper (§II-B): an undirected weighted graph stored
// as a lexicographically sorted sequence of directed edges (both directions
// present), 1D-partitioned over the PEs, together with a replicated array
// of each PE's lexicographically smallest edge. The replicated array allows
// any PE to locate the home PE of a vertex or edge by binary search and to
// classify vertices as local, shared, or ghost (Fig. 1) without
// communication.
package graph

import (
	"fmt"
	"math"

	"kamsta/internal/rng"
)

// VID is a vertex identifier. Vertex labels are 1-based as in the paper;
// label 0 is reserved for probes and sentinels.
type VID = uint64

// Weight is an edge weight. Experiments draw weights uniformly from
// [1, 255) as in the paper's setup.
type Weight = uint32

// Edge is a directed working edge. U and V are the current endpoints and
// are rewritten as components contract; TB and ID never change:
//
//   - TB packs the original endpoints (min<<32 | max) and acts as a
//     symmetric tie-break key, making all edge weights globally distinct
//     (§II-C) — an edge and its back edge share the same TB.
//   - ID is the edge's global index in the input sequence, used to route
//     the MST edge back to its home PE at the end (RedistributeMST) and to
//     look it up in the compressed original edge list (§VI-C).
//
// TB packing assumes original vertex labels below 2^32, which holds for
// every instance in this repository and in the paper.
type Edge struct {
	U, V VID
	W    Weight
	TB   uint64
	ID   uint64
}

// MakeTB builds the symmetric tie-break key for original endpoints u and v.
func MakeTB(u, v VID) uint64 {
	if u > v {
		u, v = v, u
	}
	if u >= 1<<32 || v >= 1<<32 {
		panic(fmt.Sprintf("graph: vertex label %d exceeds 2^32; TB packing invalid", v))
	}
	return u<<32 | v
}

// NewEdge builds a working edge for original endpoints u, v with weight w.
// The ID is assigned later, when the global input sequence is fixed.
func NewEdge(u, v VID, w Weight) Edge {
	return Edge{U: u, V: v, W: w, TB: MakeTB(u, v)}
}

// OrigPair returns the original (canonical min, max) endpoints encoded in
// the tie-break key.
func (e Edge) OrigPair() (VID, VID) {
	return e.TB >> 32, e.TB & 0xFFFFFFFF
}

// WeightedEdge returns a human-readable rendering.
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%d,w=%d)", e.U, e.V, e.W)
}

// LessLex orders edges lexicographically by (U, V, W, TB, ID) — the global
// sort order of the distributed edge sequence.
func LessLex(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	if a.W != b.W {
		return a.W < b.W
	}
	if a.TB != b.TB {
		return a.TB < b.TB
	}
	return a.ID < b.ID
}

// LessWeight orders edges by the unique global weight order (W, TB, V, ID).
// Distinct logical edges never compare equal, which is what makes the MST
// unique and keeps the pseudo-trees of a Borůvka round free of cycles
// longer than two.
func LessWeight(a, b Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.TB != b.TB {
		return a.TB < b.TB
	}
	if a.V != b.V {
		return a.V < b.V
	}
	return a.ID < b.ID
}

// KeyLex packs the current endpoints (U, V) into one uint64 radix key that
// is order-consistent with LessLex: KeyLex(a) < KeyLex(b) implies
// LessLex(a, b), and edges with equal keys (same U and V — parallel copies)
// are finished by the comparator on (W, TB, ID). Relies on the same
// invariant as the TB packing: every vertex label — original or component
// root, which is always itself an original label — is below 2^32, enforced
// at edge creation by MakeTB.
func KeyLex(e Edge) uint64 {
	return e.U<<32 | e.V
}

// KeyWeight packs (W, high half of TB) into one uint64 radix key that is
// order-consistent with LessWeight: the order continues inside TB's low
// half, so equal keys (same weight, same canonical min endpoint) are
// finished by the comparator.
func KeyWeight(e Edge) uint64 {
	return uint64(e.W)<<32 | e.TB>>32
}

// CmpLex adapts LessLex to the slices.SortFunc contract (a total order, so
// distinct edges never compare equal).
func CmpLex(a, b Edge) int {
	switch {
	case LessLex(a, b):
		return -1
	case LessLex(b, a):
		return 1
	}
	return 0
}

// CmpWeight adapts LessWeight to the slices.SortFunc contract.
func CmpWeight(a, b Edge) int {
	switch {
	case LessWeight(a, b):
		return -1
	case LessWeight(b, a):
		return 1
	}
	return 0
}

// SameWeightClass reports whether two edges are copies of the same logical
// undirected edge (equal weight and original endpoints).
func SameWeightClass(a, b Edge) bool {
	return a.W == b.W && a.TB == b.TB
}

// maxEdge is a sentinel greater than every real edge.
var maxEdge = Edge{U: math.MaxUint64, V: math.MaxUint64, W: math.MaxUint32, TB: math.MaxUint64, ID: math.MaxUint64}

// MaxEdge returns the sentinel edge that compares greater than all real
// edges under LessLex.
func MaxEdge() Edge { return maxEdge }

// RandomWeight returns the deterministic experiment weight for the
// undirected pair {u, v} under seed (uniform in [1,255), §VII).
func RandomWeight(seed uint64, u, v VID) Weight {
	return rng.EdgeWeight(seed, u, v)
}

// VertexRange is a run of consecutive local edges sharing the source vertex
// V: edges[Lo:Hi].
type VertexRange struct {
	V      VID
	Lo, Hi int
}

// LocalRanges returns the per-source-vertex runs of a lexicographically
// sorted local edge slice. The ranges are in ascending source order, which
// makes their V fields a sorted rename table: position in the slice is the
// dense local index of the vertex.
func LocalRanges(edges []Edge) []VertexRange {
	return AppendLocalRanges(nil, edges)
}

// AppendLocalRanges is LocalRanges appending into dst (arena-friendly: pass
// a recycled zero-length slice to keep round setup allocation-free).
func AppendLocalRanges(dst []VertexRange, edges []Edge) []VertexRange {
	for lo := 0; lo < len(edges); {
		hi := lo + 1
		for hi < len(edges) && edges[hi].U == edges[lo].U {
			hi++
		}
		dst = append(dst, VertexRange{V: edges[lo].U, Lo: lo, Hi: hi})
		lo = hi
	}
	return dst
}

// IsSorted reports whether edges are in lexicographic order.
func IsSorted(edges []Edge) bool {
	for i := 1; i < len(edges); i++ {
		if LessLex(edges[i], edges[i-1]) {
			return false
		}
	}
	return true
}
