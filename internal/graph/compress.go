// Compressed storage of the original edge list, described in §VI-C of the
// paper: to output the original endpoints of MST
// edges without keeping a second full copy in scarce compute-node memory,
// each PE stores its input chunk with 7-bit variable-length encoding of the
// differences between consecutive vertices. A sparse block index grants
// random access by edge ID without decoding the whole chunk.
package graph

import (
	"encoding/binary"
	"fmt"
)

// blockSize is the number of edges between index checkpoints; random access
// decodes at most blockSize-1 edges past a checkpoint.
const blockSize = 256

type checkpoint struct {
	offset int // byte offset into data
	prevU  VID
	prevV  VID
}

// CompressedEdges is an immutable, compressed, randomly accessible edge
// sequence. Edges must have been lexicographically sorted when encoded, so
// source deltas are non-negative; destination deltas are zigzag-encoded.
type CompressedEdges struct {
	data    []byte
	index   []checkpoint
	n       int
	firstID uint64
}

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode compresses a sorted edge slice. firstID is the global ID of
// edges[0]; the i-th stored edge is reproduced with ID firstID+i, so IDs
// must be consecutive (which holds for the input sequence by construction).
func CompressEdges(edges []Edge, firstID uint64) *CompressedEdges {
	c := &CompressedEdges{n: len(edges), firstID: firstID}
	var buf [3 * binary.MaxVarintLen64]byte
	var prevU, prevV VID
	for i, e := range edges {
		if i > 0 && LessLex(e, edges[i-1]) {
			panic("graph: edges must be sorted lexicographically")
		}
		if e.ID != firstID+uint64(i) {
			panic(fmt.Sprintf("graph: edge %d has ID %d, want consecutive %d", i, e.ID, firstID+uint64(i)))
		}
		if i%blockSize == 0 {
			c.index = append(c.index, checkpoint{offset: len(c.data), prevU: prevU, prevV: prevV})
		}
		k := binary.PutUvarint(buf[:], e.U-prevU) // non-negative by sortedness
		k += binary.PutUvarint(buf[k:], zigzag(int64(e.V)-int64(prevV)))
		k += binary.PutUvarint(buf[k:], uint64(e.W))
		c.data = append(c.data, buf[:k]...)
		prevU, prevV = e.U, e.V
	}
	return c
}

// Len reports the number of stored edges.
func (c *CompressedEdges) Len() int { return c.n }

// FirstID reports the global ID of the first stored edge.
func (c *CompressedEdges) FirstID() uint64 { return c.firstID }

// SizeBytes reports the compressed payload size (excluding the index).
func (c *CompressedEdges) SizeBytes() int { return len(c.data) }

// At decodes the i-th stored edge (0-based position within this chunk).
func (c *CompressedEdges) At(i int) Edge {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("graph: index %d out of range [0,%d)", i, c.n))
	}
	cp := c.index[i/blockSize]
	pos := cp.offset
	prevU, prevV := cp.prevU, cp.prevV
	var e Edge
	for j := (i / blockSize) * blockSize; j <= i; j++ {
		du, k1 := binary.Uvarint(c.data[pos:])
		pos += k1
		dv, k2 := binary.Uvarint(c.data[pos:])
		pos += k2
		w, k3 := binary.Uvarint(c.data[pos:])
		pos += k3
		prevU += du
		prevV = VID(int64(prevV) + unzigzag(dv))
		e = Edge{U: prevU, V: prevV, W: Weight(w), TB: MakeTB(prevU, prevV), ID: c.firstID + uint64(j)}
	}
	return e
}

// ByID decodes the edge with the given global ID; it must lie in
// [FirstID, FirstID+Len()).
func (c *CompressedEdges) ByID(id uint64) Edge {
	if id < c.firstID || id >= c.firstID+uint64(c.n) {
		panic(fmt.Sprintf("graph: ID %d outside chunk [%d,%d)", id, c.firstID, c.firstID+uint64(c.n)))
	}
	return c.At(int(id - c.firstID))
}

// DecodeAll reproduces the full edge slice, accounting the sequential
// decode pass the paper charges before and after the MST computation.
func (c *CompressedEdges) DecodeAll() []Edge {
	out := make([]Edge, 0, c.n)
	pos := 0
	var prevU, prevV VID
	for i := 0; i < c.n; i++ {
		du, k1 := binary.Uvarint(c.data[pos:])
		pos += k1
		dv, k2 := binary.Uvarint(c.data[pos:])
		pos += k2
		w, k3 := binary.Uvarint(c.data[pos:])
		pos += k3
		prevU += du
		prevV = VID(int64(prevV) + unzigzag(dv))
		out = append(out, Edge{U: prevU, V: prevV, W: Weight(w), TB: MakeTB(prevU, prevV), ID: c.firstID + uint64(i)})
	}
	return out
}
