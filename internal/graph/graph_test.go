package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMakeTBSymmetric(t *testing.T) {
	f := func(u, v uint32) bool {
		return MakeTB(uint64(u), uint64(v)) == MakeTB(uint64(v), uint64(u))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeTBInjective(t *testing.T) {
	f := func(u1, v1, u2, v2 uint32) bool {
		a := MakeTB(uint64(u1), uint64(v1))
		b := MakeTB(uint64(u2), uint64(v2))
		samePair := (u1 == u2 && v1 == v2) || (u1 == v2 && v1 == u2)
		return (a == b) == samePair
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeTBPanicsOnHugeLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for label >= 2^32")
		}
	}()
	MakeTB(1<<32, 1)
}

func TestOrigPair(t *testing.T) {
	e := NewEdge(7, 3, 10)
	mn, mx := e.OrigPair()
	if mn != 3 || mx != 7 {
		t.Fatalf("OrigPair = (%d,%d) want (3,7)", mn, mx)
	}
}

func TestLessLexTotalOrder(t *testing.T) {
	edges := []Edge{
		{U: 1, V: 2, W: 5, TB: MakeTB(1, 2)},
		{U: 1, V: 2, W: 7, TB: MakeTB(1, 2)},
		{U: 1, V: 3, W: 1, TB: MakeTB(1, 3)},
		{U: 2, V: 1, W: 5, TB: MakeTB(1, 2)},
	}
	for i := range edges {
		for j := range edges {
			li, lj := LessLex(edges[i], edges[j]), LessLex(edges[j], edges[i])
			if i == j && (li || lj) {
				t.Fatalf("edge not equal to itself: %v", edges[i])
			}
			if i != j && li == lj {
				t.Fatalf("order not strict between %v and %v", edges[i], edges[j])
			}
		}
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool { return LessLex(edges[i], edges[j]) }) {
		t.Fatal("fixture should be lexicographically sorted")
	}
}

func TestLessWeightDistinguishesBackEdges(t *testing.T) {
	e := Edge{U: 1, V: 2, W: 5, TB: MakeTB(1, 2), ID: 0}
	b := Edge{U: 2, V: 1, W: 5, TB: MakeTB(1, 2), ID: 1}
	if !SameWeightClass(e, b) {
		t.Fatal("an edge and its back edge must share the weight class")
	}
	if !LessWeight(e, b) && !LessWeight(b, e) {
		t.Fatal("LessWeight must still be a strict order over directed copies")
	}
}

func TestLessWeightPrimaryKeyIsWeight(t *testing.T) {
	light := Edge{U: 9, V: 9, W: 1, TB: MakeTB(9, 9)}
	heavy := Edge{U: 1, V: 1, W: 2, TB: MakeTB(1, 1)}
	if !LessWeight(light, heavy) || LessWeight(heavy, light) {
		t.Fatal("weight must dominate the order")
	}
}

func TestMaxEdgeIsMaximal(t *testing.T) {
	f := func(u, v uint32, w Weight) bool {
		e := NewEdge(uint64(u)+1, uint64(v)+1, w)
		return LessLex(e, MaxEdge()) && !LessLex(MaxEdge(), e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalRanges(t *testing.T) {
	edges := []Edge{
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 1}, {U: 5, V: 1}, {U: 5, V: 2}, {U: 5, V: 9},
	}
	r := LocalRanges(edges)
	want := []VertexRange{{V: 1, Lo: 0, Hi: 2}, {V: 2, Lo: 2, Hi: 3}, {V: 5, Lo: 3, Hi: 6}}
	if len(r) != len(want) {
		t.Fatalf("got %d ranges want %d", len(r), len(want))
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("range %d: got %+v want %+v", i, r[i], want[i])
		}
	}
}

func TestLocalRangesEmpty(t *testing.T) {
	if LocalRanges(nil) != nil {
		t.Fatal("empty input should give no ranges")
	}
}

func TestIsSorted(t *testing.T) {
	sorted := []Edge{{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 1}}
	if !IsSorted(sorted) {
		t.Fatal("sorted slice reported unsorted")
	}
	unsorted := []Edge{{U: 2, V: 1}, {U: 1, V: 3}}
	if IsSorted(unsorted) {
		t.Fatal("unsorted slice reported sorted")
	}
	if !IsSorted(nil) || !IsSorted(sorted[:1]) {
		t.Fatal("trivial slices are sorted")
	}
}
