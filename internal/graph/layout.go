package graph

import (
	"sort"

	"kamsta/internal/comm"
)

// Layout is the replicated part of the distributed graph data structure
// (§II-B): for every PE its lexicographically smallest edge, its last
// source vertex and its local edge count. It supports, by local binary
// search only:
//
//   - HomePE(v): the first PE holding edges with source v,
//   - IsShared(v): whether v's edge range crosses a PE boundary (shared
//     vertices are the component roots of the distributed Borůvka rounds),
//   - OwnerOfEdge(u, v): the PE holding the directed edge (u, v),
//   - SharedSpan(v): the full contiguous range of PEs sharing v.
//
// Empty PEs are handled by back-filling their First entry with the next
// non-empty PE's first edge, keeping the array monotone.
type Layout struct {
	P      int
	First  []Edge // First[i] = minlex(E_i), back-filled for empty PEs
	Last   []Edge // Last[i] = lexicographically largest edge on PE i
	Counts []int  // local edge counts

	next []int // next[i] = index of the first non-empty PE >= i, len P+1
}

// entry is the per-PE contribution to the layout.
type entry struct {
	First, Last Edge
	Count       int
}

// BuildLayout constructs the replicated layout from each PE's sorted local
// edges using one allgather, as in §II-B / §IV-C.
func BuildLayout(c *comm.Comm, local []Edge) *Layout {
	e := entry{Count: len(local)}
	if len(local) > 0 {
		e.First = local[0]
		e.Last = local[len(local)-1]
	}
	all := comm.Allgather(c, e)
	return assembleLayout(all)
}

func assembleLayout(all []entry) *Layout {
	p := len(all)
	l := &Layout{
		P:      p,
		First:  make([]Edge, p),
		Last:   make([]Edge, p),
		Counts: make([]int, p),
		next:   make([]int, p+1),
	}
	for i, e := range all {
		l.First[i] = e.First
		l.Last[i] = e.Last
		l.Counts[i] = e.Count
	}
	// Back-fill empties from the right; trailing empties get the sentinel.
	fill := MaxEdge()
	l.next[p] = p
	for i := p - 1; i >= 0; i-- {
		if l.Counts[i] == 0 {
			l.First[i] = fill
			l.next[i] = l.next[i+1]
		} else {
			fill = l.First[i]
			l.next[i] = i
		}
	}
	return l
}

// TotalEdges reports the global number of edges.
func (l *Layout) TotalEdges() int {
	s := 0
	for _, c := range l.Counts {
		s += c
	}
	return s
}

// locate returns the first non-empty PE containing an edge >= probe, or P
// if none.
func (l *Layout) locate(probe Edge) int {
	// Find the smallest i with First[next[i+1]] > probe, i.e. the PE whose
	// range [First[i], First[i+1]) can contain probe; then skip empties.
	i := sort.Search(l.P, func(i int) bool {
		n := l.next[i+1]
		if n >= l.P {
			return true // everything from i+1 on is empty
		}
		return LessLex(probe, l.First[n])
	})
	if i >= l.P {
		return l.P
	}
	i = l.next[i]
	if i >= l.P {
		return l.P
	}
	// The probe may fall in the value gap between PE i's last edge and the
	// next non-empty PE's first edge; the first edge >= probe then lives on
	// that next PE.
	if LessLex(l.Last[i], probe) {
		i = l.next[i+1]
		if i >= l.P {
			return l.P
		}
	}
	return i
}

// probeFor returns the smallest possible edge with source v. Real vertices
// are labeled from 1, so V=0, W=0 sorts before every real edge of v.
func probeFor(v VID) Edge { return Edge{U: v} }

// HomePE returns the first PE holding edges with source v. If v does not
// occur as a source anywhere, the result is the PE where such edges would
// start; callers only query existing vertices.
func (l *Layout) HomePE(v VID) int {
	i := l.locate(probeFor(v))
	if i >= l.P {
		return l.P - 1
	}
	return i
}

// OwnerOfEdge returns the PE holding the directed edge (u, v). Callers only
// query existing edges.
func (l *Layout) OwnerOfEdge(u, v VID) int {
	i := l.locate(Edge{U: u, V: v})
	if i >= l.P {
		return l.P - 1
	}
	return i
}

// OwnerOfReverse returns the PE holding the reverse copy of e — the edge
// (e.V, e.U) with the same weight class. Probing with the full (W, TB) key
// pins the exact copy even when parallel edges between the same endpoints
// exist.
func (l *Layout) OwnerOfReverse(e Edge) int {
	i := l.locate(Edge{U: e.V, V: e.U, W: e.W, TB: e.TB})
	if i >= l.P {
		return l.P - 1
	}
	return i
}

// IsShared reports whether v's edge range crosses a PE boundary: some later
// non-empty PE starts with source v while v's range starts earlier, or v
// starts a PE and also ends the previous non-empty one.
func (l *Layout) IsShared(v VID) bool {
	first, last := l.SharedSpan(v)
	return last > first
}

// SharedSpan returns the range [first, last] of non-empty PEs whose local
// edge sets contain source v, assuming v exists. For a non-shared vertex
// first == last == HomePE(v).
func (l *Layout) SharedSpan(v VID) (int, int) {
	first := l.HomePE(v)
	last := first
	for {
		n := l.next[last+1]
		if n >= l.P || l.First[n].U != v {
			break
		}
		last = n
	}
	return first, last
}

// IsSharedOn reports whether v is shared from the point of view of PE rank:
// v's span includes rank and at least one other PE.
func (l *Layout) IsSharedOn(v VID, rank int) bool {
	first, last := l.SharedSpan(v)
	return last > first && first <= rank && rank <= last
}

// GlobalVertexCount counts the distinct source vertices of the whole
// distributed edge sequence, counting shared vertices once. localEdges must
// be this PE's sorted local edges (consistent with the layout).
func GlobalVertexCount(c *comm.Comm, l *Layout, localEdges []Edge) int {
	distinct := 0
	for lo := 0; lo < len(localEdges); {
		hi := lo + 1
		for hi < len(localEdges) && localEdges[hi].U == localEdges[lo].U {
			hi++
		}
		distinct++
		lo = hi
	}
	// Subtract one if our first vertex is already counted by the previous
	// non-empty PE.
	if len(localEdges) > 0 {
		r := c.Rank()
		for i := r - 1; i >= 0; i-- {
			if l.Counts[i] > 0 {
				if l.Last[i].U == localEdges[0].U {
					distinct--
				}
				break
			}
		}
	}
	return comm.Allreduce(c, distinct, func(a, b int) int { return a + b })
}
