package kamsta

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kamsta/internal/comm"
	"kamsta/internal/faultinject"
	"kamsta/internal/obs"
)

// TestObservationPreservesGoldenBits pins the observability subsystem's
// first law: metrics, tracing and the observer are wall-side only. With all
// three enabled at once, the modeled clock and the traffic stats must be
// bit-identical to the golden references captured with observation off
// (golden_test.go).
func TestObservationPreservesGoldenBits(t *testing.T) {
	cases := []struct {
		name  string
		spec  GraphSpec
		alg   Algorithm
		bits  uint64
		stats comm.Stats
	}{
		{
			name: "gnm-boruvka",
			spec: GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42},
			alg:  AlgBoruvka,
			bits: 0x3f453980b2cb7769,
			stats: comm.Stats{
				Messages: 312, Bytes: 1377024, Collectives: 88,
			},
		},
		{
			name: "rgg2d-filter",
			spec: GraphSpec{Family: RGG2D, N: 1 << 10, M: 1 << 13, Seed: 7},
			alg:  AlgFilterBoruvka,
			bits: 0x3f68ca7d4d6ed9eb,
			stats: comm.Stats{
				Messages: 2192, Bytes: 1884808, Collectives: 472,
			},
		},
	}
	reg := NewMetrics()
	tr := NewTrace()
	m := newTestMachine(t, MachineConfig{PEs: 8, Metrics: reg})
	defer m.Close()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := m.Compute(context.Background(), FromSpec(tc.spec),
				WithAlgorithm(tc.alg),
				WithTrace(tr),
				WithObserver(func(Event) {}))
			if err != nil {
				t.Fatal(err)
			}
			if got := math.Float64bits(rep.ModeledSeconds); got != tc.bits {
				t.Errorf("observed ModeledSeconds bits %#x, want %#x — observation perturbed the modeled clock",
					got, tc.bits)
			}
			if rep.Stats != tc.stats {
				t.Errorf("observed Stats %+v, want %+v", rep.Stats, tc.stats)
			}
		})
	}
	if n := tr.Dropped(); n != 0 {
		t.Errorf("trace dropped %d spans on golden-size jobs", n)
	}
	if len(tr.Spans()) == 0 {
		t.Error("trace collected no spans")
	}
}

// TestTraceSpanStreamOrdering checks the structural invariants of the span
// stream: per rank, phase Begin/End spans balance, round spans carry
// nondecreasing round numbers, and the modeled clock stamped on collective
// spans never runs backwards.
func TestTraceSpanStreamOrdering(t *testing.T) {
	tr := NewTrace()
	m := newTestMachine(t, MachineConfig{PEs: 4})
	defer m.Close()
	_, err := m.Compute(context.Background(),
		FromSpec(GraphSpec{Family: GNM, N: 600, M: 2400, Seed: 11}),
		WithCoreOptions(coreOptionsTinyBase()),
		WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	depth := map[int32]int{}
	lastRound := map[int32]int32{}
	lastClock := map[int32]float64{}
	for _, s := range spans {
		switch s.Kind {
		case obs.SpanPhaseBegin:
			if s.Name == "" {
				t.Fatal("phase begin span without a name")
			}
			depth[s.Rank]++
		case obs.SpanPhaseEnd:
			depth[s.Rank]--
			if depth[s.Rank] < 0 {
				t.Fatalf("rank %d: phase end before begin", s.Rank)
			}
		case obs.SpanRound:
			if s.Round < lastRound[s.Rank] {
				t.Fatalf("rank %d: round %d after round %d", s.Rank, s.Round, lastRound[s.Rank])
			}
			lastRound[s.Rank] = s.Round
		case obs.SpanCollective:
			if s.Dur < 0 {
				t.Fatalf("rank %d: negative collective duration %d", s.Rank, s.Dur)
			}
			// The modeled clock is nondecreasing per rank except at the
			// machine's explicit reset between input materialization and
			// the algorithm, which restarts it at exactly zero.
			if s.Clock < lastClock[s.Rank] && s.Clock != 0 {
				t.Fatalf("rank %d: modeled clock ran backwards: %v after %v", s.Rank, s.Clock, lastClock[s.Rank])
			}
			lastClock[s.Rank] = s.Clock
		default:
			t.Fatalf("unknown span kind %d", s.Kind)
		}
	}
	for rank, d := range depth {
		if d != 0 {
			t.Errorf("rank %d: %d unbalanced phase spans", rank, d)
		}
	}
}

// silentObserver records events until the caller marks the job done; any
// event delivered after that is a containment violation (a zombie PE
// leaking notifications past Compute's return).
type silentObserver struct {
	mu     sync.Mutex
	events []Event
	done   atomic.Bool
	late   atomic.Int64
}

func (o *silentObserver) observe(ev Event) {
	if o.done.Load() {
		o.late.Add(1)
		return
	}
	o.mu.Lock()
	o.events = append(o.events, ev)
	o.mu.Unlock()
}

// finish marks the job done and, after a grace window for would-be zombie
// notifications, reports any late events.
func (o *silentObserver) finish(t *testing.T, path string) []Event {
	t.Helper()
	o.done.Store(true)
	time.Sleep(30 * time.Millisecond)
	if n := o.late.Load(); n != 0 {
		t.Errorf("%s: %d observer events delivered after Compute returned", path, n)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.events
}

// checkEventOrder verifies the (phase, round) ordering contract on a
// recorded event stream.
func checkEventOrder(t *testing.T, path string, events []Event) {
	t.Helper()
	depth, lastRound, lastClock := 0, 0, 0.0
	for _, ev := range events {
		if ev.Clock < lastClock {
			t.Fatalf("%s: clock ran backwards: %v after %v", path, ev.Clock, lastClock)
		}
		lastClock = ev.Clock
		switch ev.Kind {
		case EventPhaseBegin:
			depth++
		case EventPhaseEnd:
			if depth--; depth < 0 {
				t.Fatalf("%s: phase end before begin", path)
			}
		case EventRound:
			if ev.Round < lastRound {
				t.Fatalf("%s: round %d after round %d", path, ev.Round, lastRound)
			}
			lastRound = ev.Round
		}
	}
}

// TestObserverSilentAfterReturn drives the three ways a job can end —
// completion, cancellation mid-round, and a contained PE fault — and
// verifies that no observer event is ever delivered after Compute returns,
// and that what was delivered is (phase, round)-ordered.
func TestObserverSilentAfterReturn(t *testing.T) {
	spec := GraphSpec{Family: GNM, N: 600, M: 2400, Seed: 11}
	m := newTestMachine(t, MachineConfig{PEs: 4})
	defer m.Close()

	t.Run("completed", func(t *testing.T) {
		o := &silentObserver{}
		_, err := m.Compute(context.Background(), FromSpec(spec),
			WithCoreOptions(coreOptionsTinyBase()), WithObserver(o.observe))
		if err != nil {
			t.Fatal(err)
		}
		events := o.finish(t, "completed")
		if len(events) == 0 {
			t.Fatal("completed: no events")
		}
		checkEventOrder(t, "completed", events)
	})

	t.Run("cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		o := &silentObserver{}
		_, err := m.Compute(ctx, FromSpec(spec),
			WithCoreOptions(coreOptionsTinyBase()),
			WithObserver(func(ev Event) {
				o.observe(ev)
				if ev.Kind == EventRound && ev.Round >= 1 {
					cancel()
				}
			}))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled: err = %v, want context.Canceled", err)
		}
		checkEventOrder(t, "cancelled", o.finish(t, "cancelled"))
	})

	t.Run("faulted", func(t *testing.T) {
		o := &silentObserver{}
		plan := faultinject.NewPlan(&faultinject.Rule{
			Site: faultinject.SiteCollective, Rank: 3, Occurrence: 5,
			Action: faultinject.ActPanic,
		})
		_, err := m.Compute(context.Background(), FromSpec(spec),
			WithCoreOptions(coreOptionsTinyBase()),
			WithFaultInjection(plan),
			WithObserver(o.observe))
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("faulted: err = %v, want *JobError", err)
		}
		checkEventOrder(t, "faulted", o.finish(t, "faulted"))
	})
}

// TestObserverConcurrentCallers hammers one observed Machine from several
// goroutines (run under -race in CI): every job gets its own observer and
// trace, and each must see only its own, ordered event stream with nothing
// delivered after its Compute returns.
func TestObserverConcurrentCallers(t *testing.T) {
	reg := NewMetrics()
	m := newTestMachine(t, MachineConfig{PEs: 4, Metrics: reg})
	defer m.Close()
	spec := GraphSpec{Family: GNM, N: 600, M: 2400, Seed: 11}
	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for job := 0; job < 2; job++ {
				o := &silentObserver{}
				tr := NewTrace()
				_, err := m.Compute(context.Background(), FromSpec(spec),
					WithCoreOptions(coreOptionsTinyBase()),
					WithTrace(tr), WithObserver(o.observe))
				if err != nil {
					errs[i] = err
					return
				}
				o.done.Store(true)
				if n := o.late.Load(); n != 0 {
					errs[i] = errors.New("late observer events")
					return
				}
				o.mu.Lock()
				events := append([]Event(nil), o.events...)
				o.mu.Unlock()
				checkEventOrder(t, "concurrent", events)
				if len(tr.Spans()) == 0 {
					errs[i] = errors.New("no spans collected")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
}

// benchGoldenJob measures one golden-instance job end to end on a warm
// persistent machine.
func benchGoldenJob(b *testing.B, cfg MachineConfig, opts ...RunOption) {
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	src := FromSpec(GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42})
	if _, err := m.Compute(context.Background(), src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compute(context.Background(), src, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoldenJobBare is the no-observation baseline for the overhead
// budget; compare against BenchmarkGoldenJobObserved (target: <2% wall
// overhead with metrics enabled).
func BenchmarkGoldenJobBare(b *testing.B) {
	benchGoldenJob(b, MachineConfig{PEs: 8})
}

// BenchmarkGoldenJobObserved runs the same job with the full metrics
// pipeline enabled (job series + per-PE substrate series).
func BenchmarkGoldenJobObserved(b *testing.B) {
	benchGoldenJob(b, MachineConfig{PEs: 8, Metrics: NewMetrics()})
}
