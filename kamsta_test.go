package kamsta

import (
	"testing"

	"kamsta/internal/comm"
)

func TestComputeMSFTinyGraph(t *testing.T) {
	edges := []InputEdge{
		{U: 1, V: 2, W: 4},
		{U: 2, V: 3, W: 1},
		{U: 1, V: 3, W: 7},
	}
	for _, alg := range Algorithms() {
		rep, err := ComputeMSF(edges, Config{PEs: 3, Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.TotalWeight != 5 || rep.NumEdges != 2 {
			t.Fatalf("%s: weight=%d edges=%d want 5/2", alg, rep.TotalWeight, rep.NumEdges)
		}
		if len(rep.MSTEdges) != 2 {
			t.Fatalf("%s: MSTEdges=%v", alg, rep.MSTEdges)
		}
		for _, e := range rep.MSTEdges {
			if e.U >= e.V {
				t.Fatalf("%s: non-canonical output edge %+v", alg, e)
			}
		}
	}
}

func TestAllAlgorithmsAgreeOnSpec(t *testing.T) {
	spec := GraphSpec{Family: GNM, N: 300, M: 1200, Seed: 7}
	var weights []uint64
	for _, alg := range Algorithms() {
		rep, err := ComputeMSFSpec(spec, Config{PEs: 4, Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		weights = append(weights, rep.TotalWeight)
	}
	for i := 1; i < len(weights); i++ {
		if weights[i] != weights[0] {
			t.Fatalf("algorithms disagree: %v (order %v)", weights, Algorithms())
		}
	}
}

// TestReportOrderingCanonical: every algorithm (distributed and the
// sequential reference) reports its forest strictly increasing under the
// one shared (U, V, W) comparator — no per-path sort rules.
func TestReportOrderingCanonical(t *testing.T) {
	spec := GraphSpec{Family: RGG2D, N: 500, M: 2500, Seed: 13}
	for _, alg := range Algorithms() {
		rep, err := ComputeMSFSpec(spec, Config{PEs: 4, Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for i := 1; i < len(rep.MSTEdges); i++ {
			if !canonicalEdgeLess(rep.MSTEdges[i-1], rep.MSTEdges[i]) {
				t.Fatalf("%s: MSTEdges[%d..%d] not strictly canonical: %+v, %+v",
					alg, i-1, i, rep.MSTEdges[i-1], rep.MSTEdges[i])
			}
		}
	}
}

func TestComputeMSFValidation(t *testing.T) {
	if _, err := ComputeMSF([]InputEdge{{U: 0, V: 1, W: 1}}, Config{}); err == nil {
		t.Fatal("label 0 should be rejected")
	}
	if _, err := ComputeMSF([]InputEdge{{U: 2, V: 2, W: 1}}, Config{}); err == nil {
		t.Fatal("self-loop should be rejected")
	}
	if _, err := ComputeMSF([]InputEdge{{U: 1 << 33, V: 1, W: 1}}, Config{}); err == nil {
		t.Fatal("huge label should be rejected")
	}
	if _, err := ComputeMSF(nil, Config{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm should be rejected")
	}
}

func TestReportMetricsPopulated(t *testing.T) {
	spec := GraphSpec{Family: RGG2D, N: 400, M: 1600, Seed: 9}
	rep, err := ComputeMSFSpec(spec, Config{PEs: 4, Threads: 2, Algorithm: AlgBoruvka})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModeledSeconds <= 0 || rep.WallSeconds <= 0 {
		t.Fatalf("times not measured: %+v", rep)
	}
	if rep.EdgesPerSecond <= 0 {
		t.Fatal("throughput not computed")
	}
	if rep.InputVertices == 0 || rep.InputEdges == 0 {
		t.Fatal("input size not recorded")
	}
	if len(rep.Phases) == 0 {
		t.Fatal("phase breakdown missing")
	}
	if rep.Stats.Collectives == 0 {
		t.Fatal("traffic stats missing")
	}
}

func TestModeledTimeExcludesGeneration(t *testing.T) {
	// The same tiny algorithm workload on a huge vs small generation cost
	// should report similar modeled seconds. Compare a run against itself
	// with a second-generation spec: here we simply assert the modeled
	// time is far below the time a full re-sort of the input would cost,
	// which would dominate if generation leaked into the measurement.
	spec := GraphSpec{Family: Grid2D, N: 900, Seed: 3}
	rep, err := ComputeMSFSpec(spec, Config{PEs: 4, Algorithm: AlgBoruvka})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModeledSeconds <= 0 {
		t.Fatal("no modeled time")
	}
	// Phase times must roughly add up to the makespan (they cover the
	// whole algorithm; misc slack allowed).
	sum := 0.0
	for _, pt := range rep.Phases {
		sum += pt.Modeled
	}
	if sum > rep.ModeledSeconds*1.5+1e-6 {
		t.Fatalf("phases (%.3e) exceed makespan (%.3e)", sum, rep.ModeledSeconds)
	}
}

func TestSequentialMatchesDistributedOnUserEdges(t *testing.T) {
	// A small deterministic graph through both paths.
	var edges []InputEdge
	for i := uint64(1); i < 60; i++ {
		edges = append(edges, InputEdge{U: i, V: i + 1, W: uint32(i*7%13 + 1)})
		if i%3 == 0 {
			edges = append(edges, InputEdge{U: i, V: i + 2, W: uint32(i*5%17 + 1)})
		}
	}
	seq, err := ComputeMSF(edges, Config{Algorithm: AlgKruskal})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ComputeMSF(edges, Config{PEs: 5, Algorithm: AlgFilterBoruvka})
	if err != nil {
		t.Fatal(err)
	}
	if seq.TotalWeight != dist.TotalWeight || seq.NumEdges != dist.NumEdges {
		t.Fatalf("sequential (%d,%d) vs distributed (%d,%d)",
			seq.TotalWeight, seq.NumEdges, dist.TotalWeight, dist.NumEdges)
	}
}

func TestThreadsSpeedUpModeledTime(t *testing.T) {
	spec := GraphSpec{Family: RGG2D, N: 2000, M: 10000, Seed: 5}
	one, err := ComputeMSFSpec(spec, Config{PEs: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := ComputeMSFSpec(spec, Config{PEs: 2, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if eight.ModeledSeconds >= one.ModeledSeconds {
		t.Fatalf("8 threads (%.3e) not faster than 1 (%.3e) on a local graph",
			eight.ModeledSeconds, one.ModeledSeconds)
	}
}

func TestCustomCostModel(t *testing.T) {
	spec := GraphSpec{Family: GNM, N: 200, M: 800, Seed: 11}
	slow := comm.CostModel{Alpha: 1e-3, Beta: 1e-7, Compute: 1e-7}
	a, err := ComputeMSFSpec(spec, Config{PEs: 4, Cost: slow})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeMSFSpec(spec, Config{PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.ModeledSeconds <= b.ModeledSeconds {
		t.Fatalf("slower machine model (%.3e) should cost more than default (%.3e)",
			a.ModeledSeconds, b.ModeledSeconds)
	}
	if a.TotalWeight != b.TotalWeight {
		t.Fatal("cost model must not change the result")
	}
}
