package kamsta

import (
	"fmt"

	"kamsta/internal/comm"
)

// FaultKind classifies a contained job failure (re-exported from the
// machine simulation; see comm.FaultKind).
type FaultKind = comm.FaultKind

// The fault kinds a JobError reports.
const (
	// FaultPanic is a recovered PE panic: an algorithm bug, SPMD
	// divergence, or an injected fault. All PEs unwound the same superstep
	// together and the machine stays usable.
	FaultPanic = comm.FaultPanic
	// FaultStall means no collective completed within the job's stall
	// timeout (WithStallTimeout); the world was torn down and rebuilt.
	FaultStall = comm.FaultStall
	// FaultLostPE means a PE goroutine died without completing its job;
	// the world was torn down and rebuilt.
	FaultLostPE = comm.FaultLostPE
	// FaultTransport means the machine's transport failed mid-job (a lost
	// worker connection, a corrupt frame, an expired wire deadline). Only
	// distributed machines (MachineConfig.Transport "tcp") report it; the
	// machine is condemned, not rebuilt — see Machine.Healthy.
	FaultTransport = comm.FaultTransport
)

// JobError is the structured report of a job that failed inside the
// simulated machine — a contained PE panic, a stalled collective, or a
// lost PE goroutine. The process never crashes for a job-scoped failure:
// Compute returns a *JobError, and the Machine either verifies its world
// clean for reuse or rebuilds it transparently before the next job
// (Rebuilt records which).
type JobError struct {
	// Kind classifies the fault.
	Kind FaultKind
	// Rank is the faulting PE, or -1 when no single rank is responsible
	// (stalls).
	Rank int
	// Superstep is the faulting PE's collective count at the fault; for
	// stalls, the stalled superstep's job-relative index.
	Superstep int
	// Phase is the innermost algorithm phase open on the faulting PE when
	// it faulted ("" if none).
	Phase string
	// Round is the last distributed round the faulting PE entered (0
	// before the first round).
	Round int
	// PanicValue and Stack capture a FaultPanic's recovered value and the
	// faulting goroutine's stack at the panic site.
	PanicValue any
	Stack      string
	// Arrived and Missing diagnose a FaultStall: the ranks that reached
	// the stalled superstep's barrier and the ranks that never did.
	Arrived []int
	Missing []int
	// Faults is the total number of faults the job recorded (> 1 when
	// several PEs faulted in the same superstep); this JobError describes
	// the first.
	Faults int
	// Rebuilt reports that the fault left the world unusable (or failing
	// its health probe) and the Machine transparently rebuilt it. The
	// machine is healthy again either way; Rebuilt only records the cost.
	// Distributed worlds are never rebuilt; see FaultTransport.
	Rebuilt bool
	// Remote reports that the fault originated on a worker process of a
	// distributed machine and reached the leader through the superstep
	// control flags; Rank then indexes that worker's rank block.
	Remote bool

	cause *comm.JobError
}

// Error formats the fault for humans; the fields carry the structure.
func (e *JobError) Error() string {
	var msg string
	switch e.Kind {
	case FaultStall:
		msg = fmt.Sprintf("kamsta: job stalled at superstep %d: ranks %v reached the barrier, ranks %v did not",
			e.Superstep, e.Arrived, e.Missing)
	case FaultLostPE:
		msg = fmt.Sprintf("kamsta: PE %d lost: goroutine exited without completing its job", e.Rank)
	case FaultTransport:
		msg = fmt.Sprintf("kamsta: transport failed at superstep %d: %v", e.Superstep, e.PanicValue)
	default:
		msg = fmt.Sprintf("kamsta: PE %d panicked at superstep %d", e.Rank, e.Superstep)
		if e.Phase != "" {
			msg += fmt.Sprintf(" (phase %q, round %d)", e.Phase, e.Round)
		}
		msg = fmt.Sprintf("%s: %v", msg, e.PanicValue)
	}
	if e.Remote {
		msg += " [on a worker process]"
	}
	if e.Rebuilt {
		msg += " [machine rebuilt]"
	}
	return msg
}

// Unwrap exposes the underlying comm.JobError (for errors.As in tests and
// tooling that works below the public API).
func (e *JobError) Unwrap() error { return e.cause }

// toJobError lifts the simulation's fault report into the public error.
func toJobError(ce *comm.JobError, rebuilt bool) *JobError {
	return &JobError{
		Kind:       ce.Kind,
		Rank:       ce.Rank,
		Superstep:  ce.Superstep,
		Phase:      ce.Phase,
		Round:      ce.Round,
		PanicValue: ce.PanicValue,
		Stack:      ce.Stack,
		Arrived:    ce.Arrived,
		Missing:    ce.Missing,
		Faults:     ce.Faults,
		Rebuilt:    rebuilt,
		Remote:     ce.Remote,
		cause:      ce,
	}
}
