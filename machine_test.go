package kamsta

import (
	"context"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"kamsta/internal/core"
)

// TestMachineReuseParity: jobs on a reused Machine must produce bit-for-bit
// the same Report as the one-shot wrapper path — same forest, same modeled
// clock, same traffic. Three consecutive jobs guard against state leaking
// between jobs (clocks, phases, stats, boards).
func TestMachineReuseParity(t *testing.T) {
	spec := GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42}
	cfg := Config{PEs: 8, Algorithm: AlgBoruvka}
	want, err := ComputeMSFSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMachine(t, cfg.MachineConfig())
	defer m.Close()
	for i := 0; i < 3; i++ {
		got, err := m.Compute(context.Background(), FromSpec(spec), cfg.RunOptions()...)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
			t.Fatalf("job %d: weight/edges %d/%d want %d/%d", i,
				got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
		}
		if math.Float64bits(got.ModeledSeconds) != math.Float64bits(want.ModeledSeconds) {
			t.Fatalf("job %d: modeled %v (bits %#x) want %v (bits %#x)", i,
				got.ModeledSeconds, math.Float64bits(got.ModeledSeconds),
				want.ModeledSeconds, math.Float64bits(want.ModeledSeconds))
		}
		if got.Stats != want.Stats {
			t.Fatalf("job %d: stats %+v want %+v", i, got.Stats, want.Stats)
		}
		if len(got.MSTEdges) != len(want.MSTEdges) {
			t.Fatalf("job %d: %d MST edges want %d", i, len(got.MSTEdges), len(want.MSTEdges))
		}
		for j := range got.MSTEdges {
			if got.MSTEdges[j] != want.MSTEdges[j] {
				t.Fatalf("job %d: MSTEdges[%d] = %+v want %+v", i, j, got.MSTEdges[j], want.MSTEdges[j])
			}
		}
	}
}

// TestMachineConcurrentCompute hammers one Machine from many goroutines
// (run under -race in CI): jobs must queue, never interleave, and each must
// return its own instance's result.
func TestMachineConcurrentCompute(t *testing.T) {
	specs := []GraphSpec{
		{Family: GNM, N: 300, M: 1200, Seed: 7},
		{Family: RGG2D, N: 400, M: 1600, Seed: 9},
		{Family: Grid2D, N: 400, Seed: 3},
	}
	want := make([]uint64, len(specs))
	for i, spec := range specs {
		rep, err := ComputeMSFSpec(spec, Config{PEs: 4})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.TotalWeight
	}
	m := newTestMachine(t, MachineConfig{PEs: 4})
	defer m.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				k := (g + i) % len(specs)
				rep, err := m.Compute(context.Background(), FromSpec(specs[k]))
				if err != nil {
					errs <- err
					return
				}
				if rep.TotalWeight != want[k] {
					t.Errorf("goroutine %d job %d: weight %d want %d", g, i, rep.TotalWeight, want[k])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// newTestMachine builds a Machine or fails the test.
func newTestMachine(t *testing.T, cfg MachineConfig) *Machine {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitForGoroutines polls until the live goroutine count drops to at most
// want, failing after a generous deadline.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers; cheap in tests
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive, want <= %d", n, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMachineCancellationMidRun cancels a job from its own observer at the
// first distributed round: Compute must return ctx.Err(), the machine must
// stay usable (next job bit-identical to the one-shot path), and closing it
// must return the goroutine count to baseline — no leaked PEs or watchers.
func TestMachineCancellationMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// With a tiny base case this instance runs several distributed rounds
	// of many collectives each, so the cancellation fired at round 1 is
	// observed at one of the following collective boundaries, far from the
	// end of the job.
	spec := GraphSpec{Family: GNM, N: 1 << 12, M: 1 << 15, Seed: 5}
	m := newTestMachine(t, MachineConfig{PEs: 8})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := m.Compute(ctx, FromSpec(spec),
		WithCoreOptions(coreOptionsTinyBase()),
		WithObserver(func(ev Event) {
			if ev.Kind == EventRound && ev.Round == 1 {
				cancel()
			}
		}))
	if err != context.Canceled {
		t.Fatalf("cancelled Compute: rep=%v err=%v, want context.Canceled", rep, err)
	}
	// The machine survives cancellation: the next job matches the one-shot
	// reference exactly. The comparison uses the golden-test instance —
	// the modeled clock is pinned bit-deterministic there, so any state
	// leaking out of the aborted job would show up in the bits.
	golden := GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42}
	want, err := ComputeMSFSpec(golden, Config{PEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Compute(context.Background(), FromSpec(golden))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalWeight != want.TotalWeight ||
		math.Float64bits(got.ModeledSeconds) != math.Float64bits(want.ModeledSeconds) {
		t.Fatalf("post-cancel job: weight %d modeled %v, want %d / %v",
			got.TotalWeight, got.ModeledSeconds, want.TotalWeight, want.ModeledSeconds)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, baseline)
}

// TestMachineComputeQueue: a Compute waiting behind an in-flight job leaves
// the queue with ctx.Err() when its context expires.
func TestMachineComputeQueue(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 4})
	defer m.Close()
	started := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := m.Compute(context.Background(), FromSpec(GraphSpec{Family: GNM, N: 2000, M: 12000, Seed: 1}),
			WithObserver(func(Event) { once.Do(func() { close(started) }) }))
		if err != nil {
			t.Errorf("background job: %v", err)
		}
	}()
	<-started // the first job is in flight and holds the machine
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Compute(ctx, FromSpec(GraphSpec{Family: GNM, N: 100, M: 400, Seed: 2})); err != context.Canceled {
		t.Fatalf("queued Compute with cancelled ctx: %v, want context.Canceled", err)
	}
	<-done
}

// TestMachineClosed: Compute on a closed machine fails with
// ErrMachineClosed; Close is idempotent.
func TestMachineClosed(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 2})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compute(context.Background(), FromEdges([]InputEdge{{U: 1, V: 2, W: 1}})); err != ErrMachineClosed {
		t.Fatalf("Compute on closed machine: %v, want ErrMachineClosed", err)
	}
}

// TestMachineObserverEvents: a job streams balanced phase events and round
// events with plausible payloads, in nondecreasing modeled time.
func TestMachineObserverEvents(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 4})
	defer m.Close()
	var events []Event
	_, err := m.Compute(context.Background(),
		FromSpec(GraphSpec{Family: GNM, N: 600, M: 2400, Seed: 11}),
		WithCoreOptions(coreOptionsTinyBase()),
		WithObserver(func(ev Event) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	depth, rounds := 0, 0
	lastRound := 0
	for _, ev := range events {
		switch ev.Kind {
		case EventPhaseBegin:
			if ev.Phase == "" {
				t.Fatal("phase begin without a name")
			}
			depth++
		case EventPhaseEnd:
			depth--
			if depth < 0 {
				t.Fatal("phase end without begin")
			}
		case EventRound:
			rounds++
			if ev.Round != lastRound+1 || ev.Vertices <= 0 {
				t.Fatalf("round event %+v after round %d", ev, lastRound)
			}
			lastRound = ev.Round
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced phase events (depth %d)", depth)
	}
	if rounds == 0 {
		t.Fatal("no round events")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Clock < events[i-1].Clock {
			t.Fatalf("event clocks went backwards: %v then %v", events[i-1], events[i])
		}
	}
}

// TestParseAlgorithm: case-insensitive resolution, and unknown names list
// the valid ones.
func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a, got, err)
		}
	}
	if got, err := ParseAlgorithm("FILTERBORUVKA"); err != nil || got != AlgFilterBoruvka {
		t.Fatalf("case-insensitive parse: %v, %v", got, err)
	}
	_, err := ParseAlgorithm("primjarnik")
	if err == nil {
		t.Fatal("unknown algorithm should error")
	}
	for _, a := range Algorithms() {
		if !strings.Contains(err.Error(), string(a)) {
			t.Fatalf("error %q should list %q", err, a)
		}
	}
}

// coreOptionsTinyBase shrinks the base case so even small test instances
// run several distributed rounds (round events, cancellation windows).
func coreOptionsTinyBase() core.Options {
	return core.Options{BaseCaseCap: 1, DedupParallel: true}
}

// TestFIFOSemOrder: waiters are granted the job slot in strict arrival
// order. Each waiter is enqueued only after the previous one is visibly
// queued (pending), so the arrival order is deterministic; the grants must
// then come back in exactly that order.
func TestFIFOSemOrder(t *testing.T) {
	var s fifoSem
	if err := s.acquire(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.acquire(context.Background(), nil); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.release()
		}(i)
		for s.pending() != i+1 {
			runtime.Gosched()
		}
	}
	s.release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v: position %d served waiter %d (not FIFO)", order, i, got)
		}
	}
}

// TestFIFOSemAbandon: a waiter whose context expires leaves the queue
// without disturbing the order of the others, and a grant racing an
// abandonment is passed on, never lost.
func TestFIFOSemAbandon(t *testing.T) {
	var s fifoSem
	if err := s.acquire(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() { errs <- s.acquire(ctx, nil) }()
	for s.pending() != 1 {
		runtime.Gosched()
	}
	cancel()
	if err := <-errs; err != context.Canceled {
		t.Fatalf("abandoned waiter returned %v, want context.Canceled", err)
	}
	if s.pending() != 0 {
		t.Fatalf("abandoned waiter still queued (pending %d)", s.pending())
	}
	s.release()

	// Hammer the grant/abandon race: many waiters with racing cancels; the
	// slot must survive (acquirable at the end) and no goroutine may hang.
	for round := 0; round < 200; round++ {
		if err := s.acquire(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			cctx, ccancel := context.WithCancel(context.Background())
			go func() {
				defer wg.Done()
				if s.acquire(cctx, nil) == nil {
					s.release()
				}
			}()
			go ccancel()
		}
		s.release()
		wg.Wait()
	}
	if err := s.acquire(context.Background(), nil); err != nil {
		t.Fatalf("slot lost after races: %v", err)
	}
	s.release()
}

// TestMachineComputeFIFO: concurrent Compute callers run in submission
// order. The job slot is held directly while callers are enqueued one at a
// time, so the queue order is known; completion order must match it.
func TestMachineComputeFIFO(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 2})
	defer m.Close()
	edges := []InputEdge{{U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 2}}
	if err := m.jobs.acquire(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	const n = 6
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := m.Compute(context.Background(), FromEdges(edges)); err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
		for m.jobs.pending() != i+1 {
			runtime.Gosched()
		}
	}
	m.jobs.release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v: position %d ran job %d (not FIFO)", order, i, got)
		}
	}
}
