module kamsta

go 1.22
